"""Sharded agent scheduler: node-partitioned structure, global semantics.

At O(10^6) pending tasks the single :class:`~.scheduler.AgentScheduler`
keeps every pending heap, capacity-index update and wake filter in one
flat structure.  :class:`ShardedScheduler` partitions the pilot's nodes
into contiguous **shards**, each owning

* its own :class:`~repro.hpc.node.FreeCapacityIndex` over its node range
  (a shallower tree, so point updates from allocate/release touch fewer
  cells), and
* the shape-keyed pending heaps of the shapes *homed* to it (bounded
  per-shard queue state).

A thin **merge layer** on top preserves the exact semantics of the
un-sharded scheduler:

* **routing** -- a shape is homed to a shard that could statically fit it
  (shape feasibility against the shard's node profiles), least-loaded
  first, and all entries of a shape stay together (colocate groups are
  shapes, so group members always share a home);
* **global grant order** -- a ready heap merges the per-shard shape heads
  in ``(-priority, seq)`` order, so grants happen in exactly the order
  the un-sharded scheduler would pick;
* **global placement** -- ``_find_fit`` walks the shards in node order
  (with the same wrap-around start and soft-``avoid`` deferral), querying
  each shard's capacity index over the overlap, which reproduces the
  global first-fit *slot assignment* bit-for-bit;
* **stealing** -- when a shard drains while others hold backlog, whole
  shape queues are re-homed to the idle shard (semantics-neutral: homing
  only decides which shard's structures hold the entries).

Because grant order and slot choice are both preserved, a single-shard
``ShardedScheduler`` is behaviourally identical to ``AgentScheduler``
(and therefore to the seed :mod:`~repro.pilot.agent.reference`), and a
multi-shard one produces the identical grant *set* and slot assignments
-- property-tested in ``tests/pilot/test_sharded.py`` and
``tests/test_properties.py``.

Two batch entry points serve same-timestamp dispatch bursts without
changing any of the above: :meth:`ShardedScheduler.schedule_batch`
vectorises consecutive same-shape submissions (shape key, feasibility
gate and infeasible-memo evaluated once per run; single-rank
unconstrained runs place through a cursor walk that only descends the
capacity index when the cursor node stops fitting), and
:meth:`ShardedScheduler.release_batch` drops the per-release wake pass
when nothing is waiting.  Both are property-tested equivalent to their
sequential counterparts.  When the session engine is lane-partitioned
(``SimulationEngine(lanes=N)``), grant events are tagged with the owning
node partition's dispatch lane.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from ...hpc.node import FreeCapacityIndex, NodeList, NodeState, Slot
from ...sim.events import Event
from ...utils.log import get_logger
from .scheduler import SchedulerError, ShapeKey, _ALIVE

if TYPE_CHECKING:  # pragma: no cover
    from ..session import Session
    from ..task import Task

__all__ = ["ShardedScheduler", "ShardedSchedulerStats"]

log = get_logger("pilot.agent.sharded")


class ShardedSchedulerStats:
    """Hot-path counters, including merge-layer stealing and batching."""

    __slots__ = ("place_attempts", "grants", "passes", "memo_hits",
                 "steals", "batch_runs", "batch_tasks")

    def __init__(self) -> None:
        self.place_attempts = 0
        self.grants = 0
        self.passes = 0
        self.memo_hits = 0
        self.steals = 0  # shape queues re-homed on drain imbalance
        self.batch_runs = 0   # same-shape runs placed via the vector walk
        self.batch_tasks = 0  # tasks granted through those runs

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"<ShardedSchedulerStats {self.as_dict()}>"


class _Shard:
    """One contiguous node range with its own index and pending heaps."""

    __slots__ = ("sid", "lo", "hi", "nodes", "index", "shape_queues",
                 "infeasible", "pending_count", "profiles")

    def __init__(self, sid: int, lo: int, hi: int,
                 nodes: List[NodeState]) -> None:
        self.sid = sid
        self.lo = lo
        self.hi = hi
        self.nodes = nodes
        self.index = FreeCapacityIndex(nodes, offset=lo)
        #: shape -> pending heap of [-priority, seq, task, event, alive]
        self.shape_queues: Dict[ShapeKey, List[list]] = {}
        #: homed shapes that failed placement since capacity last grew
        self.infeasible: Set[ShapeKey] = set()
        self.pending_count = 0
        #: distinct static node profiles, for feasibility routing
        self.profiles = sorted({(n.num_cores, n.num_gpus, n.mem_gb)
                                for n in nodes}, reverse=True)

    def could_fit(self, cores: int, gpus: int, mem_gb: float) -> bool:
        """Static check: could an empty node of this shard host one rank?"""
        return any(pc >= cores and pg >= gpus and pm >= mem_gb - 1e-9
                   for pc, pg, pm in self.profiles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<_Shard {self.sid} [{self.lo},{self.hi}) "
                f"pending={self.pending_count}>")


class ShardedScheduler:
    """Node-partitioned slot allocator with un-sharded semantics.

    Drop-in for :class:`~.scheduler.AgentScheduler` (same public API and
    the same grant order / slot assignments); see the module docstring
    for the structure.  ``shards=1`` degenerates to the flat scheduler.
    """

    #: do not steal unless the richest shard holds at least this many
    #: pending entries (re-homing has bookkeeping cost)
    STEAL_MIN_PENDING = 2

    def __init__(self, session: "Session", nodes: NodeList, pilot_uid: str,
                 shards: int = 4) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.session = session
        self.nodes = nodes
        self.pilot_uid = pilot_uid
        n = len(nodes)
        shards = min(shards, max(n, 1))
        self._shard_span = (n + shards - 1) // shards if n else 1
        self._shards: List[_Shard] = []
        for sid in range(shards):
            lo = sid * self._shard_span
            hi = min(n, lo + self._shard_span)
            if lo >= hi:
                break
            self._shards.append(
                _Shard(sid, lo, hi, [nodes[i] for i in range(lo, hi)]))
        self._seq = itertools.count()
        #: uid -> live pending entry (O(1) withdraw / duplicate check)
        self._entries: Dict[str, list] = {}
        self._pending_count = 0
        #: shape -> home shard id (all entries of a shape live together)
        self._home: Dict[ShapeKey, int] = {}
        #: merge layer: (head -priority, head seq, shape) ready heap
        self._ready: List[tuple] = []
        self._ready_shapes: Set[ShapeKey] = set()
        self._fit_cache: Dict[Tuple[int, int, float], bool] = {}
        self._held: Dict[str, List[Slot]] = {}
        self._node_held: Dict[int, Dict[str, int]] = {}
        self._colocate_node: Dict[str, int] = {}
        self._affinity_node: Dict[str, int] = {}
        self._rr_index = 0
        #: total parked (infeasible-memoised) shapes across shards: an O(1)
        #: guard that lets release() skip the wake machinery entirely in
        #: the steady state where nothing is waiting on capacity
        self._parked_count = 0
        self.stats = ShardedSchedulerStats()
        #: grant events are tagged with the owning node partition's dispatch
        #: lane when the session engine is lane-partitioned (cached once:
        #: the engine is fixed for the session's lifetime)
        self._engine_lanes = getattr(session.engine, "_nlanes", 1)
        #: hot-path aliases: the engine and profiler are fixed for the
        #: session's lifetime, and _grant runs once per task
        self._engine = session.engine
        self._prof_record = session.profiler.record
        # Observability (poll-only: the per-shard pending counts and the
        # steal counter are maintained on the hot path anyway, so sampling
        # them costs nothing between ticks)
        obs = getattr(session, "observability", None)
        self._obs_metrics = obs.metrics if obs is not None else None
        if self._obs_metrics is not None:
            self._obs_steals_seen = 0
            self._obs_metrics.add_poll(self._obs_poll)
        # the per-shard indexes supersede the NodeList's list-wide one:
        # detach it so each allocate/release pays one segment-tree update,
        # not two (it rebuilds lazily if find_fit is used again)
        nodes.detach_index()
        for shard in self._shards:
            for node in shard.nodes:
                node._listeners.append(shard.index.update)
        for node in nodes:
            node._listeners.append(self._node_changed)

    # -- introspection -----------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def queue_length(self) -> int:
        return self._pending_count

    @property
    def held_tasks(self) -> List[str]:
        return list(self._held)

    def shard_pending(self) -> List[int]:
        """Per-shard pending entry counts (merge-layer balance view)."""
        return [shard.pending_count for shard in self._shards]

    def held_on_node(self, node_index: int) -> List[str]:
        return list(self._node_held.get(node_index, ()))

    def _node_changed(self, node: NodeState, kind: str) -> None:
        if kind == "up":
            self._capacity_increased([node])

    # -- observability -----------------------------------------------------------
    def _obs_poll(self) -> None:
        """Per-sample-tick snapshot of shard balance and steal activity."""
        metrics = self._obs_metrics
        pilot = {"pilot": self.pilot_uid}
        metrics.gauge("scheduler_pending_total", pilot).set(
            self._pending_count)
        for shard in self._shards:
            metrics.gauge("scheduler_shard_pending",
                          {"pilot": self.pilot_uid,
                           "shard": str(shard.sid)}).set(shard.pending_count)
        steals = self.stats.steals
        delta = steals - self._obs_steals_seen
        if delta:
            metrics.counter("scheduler_steals_total", pilot).inc(delta)
            self._obs_steals_seen = steals
        total = self.nodes.total_cores
        if total:
            used = total - self.nodes.total_free_cores
            metrics.gauge("pilot_core_utilization", pilot).set(used / total)

    # -- validation / routing ----------------------------------------------------
    @staticmethod
    def _shape_of(task: "Task") -> ShapeKey:
        d = task.description
        group = d.tags.get("colocate") if d.tags else None
        return (d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                d.ranks, group)

    def _route(self, shape: ShapeKey) -> int:
        """Pick a home shard: statically feasible, least pending."""
        best: Optional[_Shard] = None
        for shard in self._shards:
            if not shard.could_fit(shape[0], shape[1], shape[2]):
                continue
            if best is None or shard.pending_count < best.pending_count:
                best = shard
        if best is None:
            # schedule()'s feasibility gate passed, so some shard can fit
            # the shape; unreachable unless profiles diverge -- be safe.
            best = self._shards[0]  # pragma: no cover - defensive
        return best.sid

    # -- public API ------------------------------------------------------------
    def schedule(self, task: "Task") -> Event:
        """Request slots for *task*; event succeeds with ``List[Slot]``.

        The hot path reads the description exactly once into the shape
        key and threads it through feasibility, routing and placement --
        at O(10^6) submissions repeated ``Config`` attribute lookups are
        a measurable tax.
        """
        event = self.session.engine.event()
        uid = task.uid
        if uid in self._held:
            event.fail(SchedulerError(f"{uid} already holds slots"))
            return event
        if uid in self._entries:
            event.fail(SchedulerError(f"{uid} is already queued"))
            return event
        d = task.description
        tags = d.tags
        shape = (d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                 d.ranks, tags.get("colocate") if tags else None)
        key = shape[:3]
        fits = self._fit_cache.get(key)
        if fits is None:
            fits = self.nodes.can_ever_fit(*key)
            self._fit_cache[key] = fits
        ranks = shape[3]
        if not (fits and ranks * shape[0] <= self.nodes.total_cores
                and ranks * shape[1] <= self.nodes.total_gpus):
            event.fail(SchedulerError(
                f"{uid} can never fit on pilot {self.pilot_uid}: "
                f"needs {ranks * shape[0]}c/{ranks * shape[1]}g"))
            return event
        home = self._home.get(shape)
        if home is not None and shape in self._shards[home].infeasible:
            self.stats.memo_hits += 1
            self._enqueue(shape, task, event)
            return event
        slots = self._place(task, shape)
        if slots is None:
            sid = self._enqueue(shape, task, event)
            self._shards[sid].infeasible.add(shape)
            self._parked_count += 1
            return event
        self._grant(task, event, slots)
        return event

    def schedule_batch(self, tasks: List["Task"]) -> List[Event]:
        """Request slots for many tasks; equivalent to sequential calls.

        Returns one event per task, in order.  The outcome (grants, slot
        assignments, queue state, grant-event order) is identical to
        calling :meth:`schedule` once per task -- property-tested in
        ``tests/test_properties.py`` -- but consecutive same-shape tasks
        are processed as one **run**: the shape key, feasibility gate and
        infeasible-memo lookup are evaluated once per run, and single-rank
        runs without placement constraints go through a vectorised walk
        (:meth:`_place_run`) that keeps the round-robin cursor in a local
        and allocates straight off it instead of re-entering the full
        ``_place`` machinery per task.  This is the batch half of the
        "parallel event dispatch" work: a same-timestamp dispatch burst of
        N same-shape submissions costs one descent per *node touched*
        rather than N independent placement calls.
        """
        events: List[Event] = []
        if not tasks:
            return events
        shape_of = self._shape_of
        # Bulk campaigns share description objects across tasks; shape
        # extraction walks the schema-checked Config attribute path, so
        # memoise it per distinct description *for this call*.  No user
        # code runs mid-batch (grant callbacks only fire once the engine
        # resumes), so a description cannot change between the tasks that
        # share it -- the memo is exactly the sequential read sequence.
        # The tasks list keeps every description alive, so id() is stable.
        memo: Dict[int, ShapeKey] = {}
        shapes: List[ShapeKey] = []
        for task in tasks:
            desc_id = id(task.description)
            shape = memo.get(desc_id)
            if shape is None:
                shape = shape_of(task)
                memo[desc_id] = shape
            shapes.append(shape)
        n = len(tasks)
        i = 0
        while i < n:
            shape = shapes[i]
            j = i + 1
            while j < n and shapes[j] == shape:
                j += 1
            self._schedule_run(tasks[i:j], shape, events)
            i = j
        return events

    def _schedule_run(self, run: List["Task"], shape: ShapeKey,
                      events: List[Event]) -> None:
        """Schedule one consecutive same-shape run (appends to *events*)."""
        new_event = self.session.engine.event
        key = shape[:3]
        fits = self._fit_cache.get(key)
        if fits is None:
            fits = self.nodes.can_ever_fit(*key)
            self._fit_cache[key] = fits
        cores, gpus, mem, ranks, group = shape
        feasible = (fits and ranks * cores <= self.nodes.total_cores
                    and ranks * gpus <= self.nodes.total_gpus)
        home = self._home.get(shape)
        parked = home is not None and shape in self._shards[home].infeasible
        simple = ranks == 1 and group is None
        stats = self.stats
        nodes = self.nodes
        nnodes = len(nodes)
        pos = self._rr_index
        in_run = False  # currently inside a vectorised sub-run?
        #: per-description tag-affinity memo (same argument as the shape
        #: memo in schedule_batch: descriptions are immutable mid-batch)
        desc_affinity: Dict[int, Any] = {}
        for task in run:
            event = new_event()
            events.append(event)
            uid = task.uid
            if uid in self._held:
                event.fail(SchedulerError(f"{uid} already holds slots"))
                continue
            if uid in self._entries:
                event.fail(SchedulerError(f"{uid} is already queued"))
                continue
            if not feasible:
                event.fail(SchedulerError(
                    f"{uid} can never fit on pilot {self.pilot_uid}: "
                    f"needs {ranks * cores}c/{ranks * gpus}g"))
                continue
            if parked:
                stats.memo_hits += 1
                self._enqueue(shape, task, event)
                continue
            if simple:
                d = task.description
                desc_id = id(d)
                if desc_id in desc_affinity:
                    affinity = desc_affinity[desc_id]
                else:
                    tags = d.tags
                    affinity = tags.get("affinity") if tags else None
                    desc_affinity[desc_id] = affinity
                if affinity is None:
                    affinity = getattr(task, "affinity_key", None)
                if affinity is None and \
                        not getattr(task, "avoid_nodes", None):
                    # Vectorised walk: the round-robin cursor lives in a
                    # local; the cursor node is re-checked with one O(1)
                    # fits() test and the segment-tree descent only runs
                    # when that node stopped fitting.  Placement per task
                    # is bit-identical to _place (first fit from the
                    # cursor with wrap-around, cursor -> node + 1).
                    stats.place_attempts += 1
                    node = nodes[pos]
                    if not node.fits(cores, gpus, mem):
                        node = self._find_fit(cores, gpus, mem, pos, None)
                    if node is None:
                        self._rr_index = pos
                        sid = self._enqueue(shape, task, event)
                        self._shards[sid].infeasible.add(shape)
                        self._parked_count += 1
                        parked = True
                        continue
                    slot = node.allocate(cores, gpus, mem)
                    pos = slot.node_index + 1
                    if pos == nnodes:
                        pos = 0
                    if not in_run:
                        in_run = True
                        stats.batch_runs += 1
                    stats.batch_tasks += 1
                    self._grant(task, event, [slot])
                    continue
            in_run = False
            self._rr_index = pos
            slots = self._place(task, shape)
            pos = self._rr_index
            if slots is None:
                sid = self._enqueue(shape, task, event)
                self._shards[sid].infeasible.add(shape)
                self._parked_count += 1
                parked = True
            else:
                self._grant(task, event, slots)
        self._rr_index = pos

    def release(self, task: "Task") -> None:
        """Return a task's slots and re-run placement for waiters."""
        slots = self._held.pop(task.uid, None)
        if slots is None:
            raise SchedulerError(f"{task.uid} holds no slots")
        changed: List[NodeState] = []
        seen: Set[int] = set()
        for slot in slots:
            self.nodes[slot.node_index].release(slot)
            self._drop_node_held(slot.node_index, task.uid)
            if slot.node_index not in seen:
                seen.add(slot.node_index)
                changed.append(self.nodes[slot.node_index])
        task.slots = []
        self._capacity_increased(changed)

    def release_batch(self, tasks: List["Task"]) -> None:
        """Release many tasks' slots with one wake/steal pass.

        Behaviourally identical to sequential :meth:`release` calls: when
        nothing is parked or pending the per-release wake pass is a no-op
        anyway (the O(1) guards in :meth:`_capacity_increased` make each
        one cheap, this skips even those plus the changed-node list
        bookkeeping) and slots are returned grouped by node through
        :meth:`NodeState.release_many`, so the capacity indexes refresh
        once per touched node rather than once per slot; otherwise it
        falls back to per-task release so waiters wake at exactly the
        same points in the release sequence.
        """
        if self._parked_count or self._pending_count:
            for task in tasks:
                self.release(task)
            return
        nodes = self.nodes
        held = self._held
        by_node: Dict[int, List[Slot]] = {}
        for task in tasks:
            slots = held.pop(task.uid, None)
            if slots is None:
                raise SchedulerError(f"{task.uid} holds no slots")
            for slot in slots:
                node_index = slot.node_index
                group = by_node.get(node_index)
                if group is None:
                    by_node[node_index] = [slot]
                else:
                    group.append(slot)
                self._drop_node_held(node_index, task.uid)
            task.slots = []
        for node_index, group in by_node.items():
            nodes[node_index].release_many(group)

    def withdraw(self, task: "Task") -> bool:
        """Remove a queued (not yet granted) request.  True if found."""
        entry = self._entries.pop(task.uid, None)
        if entry is None:
            return False
        entry[_ALIVE] = False
        self._pending_count -= 1
        home = self._home.get(self._shape_of(task))
        if home is not None:
            self._shards[home].pending_count -= 1
        return True

    def kick(self) -> None:
        """Re-run placement (e.g. after a crashed node was repaired)."""
        self._capacity_increased()

    # -- queue plumbing ----------------------------------------------------------
    def _enqueue(self, shape: ShapeKey, task: "Task", event: Event) -> int:
        home = self._home.get(shape)
        if home is None:
            home = self._route(shape)
            self._home[shape] = home
        shard = self._shards[home]
        entry = [-task.description.priority, next(self._seq), task, event,
                 True]
        heappush(shard.shape_queues.setdefault(shape, []), entry)
        self._entries[task.uid] = entry
        self._pending_count += 1
        shard.pending_count += 1
        return home

    @staticmethod
    def _peek(queue: List[list]) -> Optional[list]:
        while queue:
            head = queue[0]
            if head[_ALIVE]:
                return head
            heappop(queue)
        return None

    def _push_ready(self, shape: ShapeKey) -> None:
        if shape in self._ready_shapes:
            return
        shard = self._shards[self._home[shape]]
        queue = shard.shape_queues.get(shape)
        head = self._peek(queue) if queue else None
        if head is None:
            shard.shape_queues.pop(shape, None)
            return
        self._ready_shapes.add(shape)
        heappush(self._ready, (head[0], head[1], shape))

    def _grant(self, task: "Task", event: Event,
               slots: List[Slot]) -> None:
        self._held[task.uid] = slots
        for slot in slots:
            holders = self._node_held.setdefault(slot.node_index, {})
            holders[task.uid] = holders.get(task.uid, 0) + 1
        task.slots = slots
        if self._engine_lanes != 1:
            # Tag the grant (and the completion chain its callbacks spawn
            # on the same Event) with the owning node partition's dispatch
            # lane, so same-partition traffic shares one engine queue pair.
            event.lane = (slots[0].node_index // self._shard_span) \
                % self._engine_lanes
        self.stats.grants += 1
        self._prof_record(self._engine.now, task.uid, "schedule_ok",
                          self.pilot_uid)
        event.succeed(slots)

    def _drop_node_held(self, node_index: int, uid: str) -> None:
        holders = self._node_held.get(node_index)
        if holders is None:
            return
        count = holders.get(uid, 0) - 1
        if count > 0:
            holders[uid] = count
        else:
            holders.pop(uid, None)
            if not holders:
                del self._node_held[node_index]

    # -- merge layer -------------------------------------------------------------
    def _capacity_increased(
            self, changed: Optional[List[NodeState]] = None) -> None:
        """Wake qualifying parked shapes across all shards, then place.

        The wake filter matches the un-sharded scheduler's exactly (see
        ``AgentScheduler._capacity_increased`` for the argument): with a
        *changed* node list, wake a parked shape iff some changed node
        now fits one rank; for a blind kick, fall back to the per-shard
        index roots (their max over shards equals the global root).

        Steady-state releases (nothing parked, nothing pending) reduce to
        two integer tests: the wake loop is gated on the cross-shard
        parked-shape count, the placement pass on the ready heap being
        non-empty (shapes only become ready through a wake), and stealing
        on the total pending count.  All three guards are exact -- the
        skipped work would have been a no-op -- so behaviour is unchanged
        while the million-task drain stops paying the full merge-layer
        sweep on every one of its ~1M releases.
        """
        if self._parked_count:
            for shard in self._shards:
                infeasible = shard.infeasible
                if not infeasible:
                    continue
                if changed is None:
                    shards = self._shards
                    woken = [shape for shape in infeasible
                             if any(s.index.root_qualifies(shape[0],
                                                           shape[1],
                                                           shape[2])
                                    for s in shards)]
                else:
                    woken = [shape for shape in infeasible
                             if any(node.fits(shape[0], shape[1], shape[2])
                                    for node in changed)]
                for shape in woken:
                    infeasible.discard(shape)
                    self._parked_count -= 1
                    self._push_ready(shape)
        if self._ready:
            self._try_schedule()
        if self._pending_count >= self.STEAL_MIN_PENDING:
            self._steal_if_imbalanced()

    def _try_schedule(self) -> None:
        """Drain the merge-layer ready heap in global head order."""
        self.stats.passes += 1
        ready = self._ready
        ready_shapes = self._ready_shapes
        shards = self._shards
        home = self._home
        while ready:
            key0, key1, shape = heappop(ready)
            ready_shapes.discard(shape)
            shard = shards[home[shape]]
            if shape in shard.infeasible:
                continue
            queue = shard.shape_queues.get(shape)
            head = self._peek(queue) if queue else None
            if head is None:
                shard.shape_queues.pop(shape, None)
                continue
            if head[0] != key0 or head[1] != key1:
                self._push_ready(shape)  # stale key: re-offer live head
                continue
            task, event = head[2], head[3]
            slots = self._place(task, shape)
            if slots is None:
                shard.infeasible.add(shape)
                self._parked_count += 1
                continue
            heappop(queue)
            del self._entries[task.uid]
            self._pending_count -= 1
            shard.pending_count -= 1
            self._grant(task, event, slots)
            self._push_ready(shape)

    def _steal_if_imbalanced(self) -> None:
        """Re-home backlog from the richest shard to drained shards.

        Purely structural: homing decides which shard's heaps hold the
        entries, never placement, so stealing cannot change semantics --
        it keeps per-shard pending state (and the wake work attached to
        it) balanced when one partition's traffic drains first.
        """
        if self._pending_count < self.STEAL_MIN_PENDING:
            return  # richest shard cannot clear the threshold either
        if len(self._shards) < 2:
            return
        poorest = min(self._shards, key=lambda s: s.pending_count)
        if poorest.pending_count:
            return
        richest = max(self._shards, key=lambda s: s.pending_count)
        if richest.pending_count < self.STEAL_MIN_PENDING \
                or len(richest.shape_queues) < 2:
            return
        # move whole shape queues until the balance roughly halves;
        # whole-shape moves keep "all entries of a shape share a home"
        target = richest.pending_count // 2
        moved = 0
        for shape in list(richest.shape_queues):
            if moved >= target or len(richest.shape_queues) < 2:
                break
            queue = richest.shape_queues.pop(shape)
            live = sum(1 for entry in queue if entry[_ALIVE])
            poorest.shape_queues[shape] = queue
            if shape in richest.infeasible:
                richest.infeasible.discard(shape)
                poorest.infeasible.add(shape)
            self._home[shape] = poorest.sid
            richest.pending_count -= live
            poorest.pending_count += live
            moved += live
            self.stats.steals += 1

    # -- placement ---------------------------------------------------------------
    def _find_fit(self, cores: int, gpus: int, mem_gb: float,
                  start: int, avoid: Optional[set]) -> Optional[NodeState]:
        """Global first-fit across shard indexes, wrap-around at *start*.

        Walks shards in node order and queries each shard's capacity
        index over the overlap with the scan range, reproducing
        ``NodeList.find_fit``'s result (including the soft-``avoid``
        deferral) exactly.

        The O(1) fast path first probes the start node directly: the
        round-robin cursor points one past the previous grant, and on a
        lightly-loaded pilot (the steady state of a windowed drain) that
        node usually fits, making the common case a single ``fits()``
        test instead of a segment-tree descent.  First-fit from *start*
        returns the start node whenever it qualifies, so the shortcut is
        semantics-neutral; it is skipped under ``avoid`` to keep the
        deferral bookkeeping in one place.
        """
        nodes = self.nodes
        n = len(nodes)
        if not avoid and start < n:
            node = nodes[start]
            if node.fits(cores, gpus, mem_gb):
                return node
        shards = self._shards
        span = self._shard_span
        deferred: Optional[NodeState] = None
        for lo, hi in ((start, n), (0, start)):
            pos = lo
            while pos < hi:
                shard = shards[pos // span]
                s_hi = hi if hi < shard.hi else shard.hi
                local = shard.index.first_fit(
                    cores, gpus, mem_gb, pos - shard.lo, s_hi - shard.lo)
                if local < 0:
                    pos = s_hi
                    continue
                i = local + shard.lo
                node = nodes[i]
                if avoid and node.name in avoid:
                    if deferred is None:
                        deferred = node
                    pos = i + 1
                    continue
                return node
        return deferred

    def _place(self, task: "Task",
               shape: Optional[ShapeKey] = None) -> Optional[List[Slot]]:
        """Try to place all ranks; returns slots or None (state rolled back).

        Identical algorithm to ``AgentScheduler._place`` -- colocation is
        a hard pin, affinity a soft preference, ``avoid`` a soft
        blacklist -- with node search going through the shard indexes.
        Callers that already built the shape key pass it in; the
        description is then not re-read at all.
        """
        self.stats.place_attempts += 1
        d = task.description
        if shape is None:
            tags = d.tags
            shape = (d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                     d.ranks, tags.get("colocate") if tags else None)
        cores, gpus, mem, ranks, group = shape
        slots: List[Slot] = []
        affinity = d.tags.get("affinity") if d.tags else None
        if affinity is None:
            affinity = getattr(task, "affinity_key", None)
        pinned: Optional[int] = self._colocate_node.get(group) \
            if group else None
        preferred: Optional[int] = self._affinity_node.get(affinity) \
            if affinity is not None else None
        avoid = getattr(task, "avoid_nodes", None)
        for _rank in range(ranks):
            node: Optional[NodeState]
            if pinned is not None:
                node = self.nodes[pinned]
                if not node.fits(cores, gpus, mem):
                    node = None
            else:
                node = None
                if preferred is not None:
                    candidate = self.nodes[preferred]
                    if candidate.fits(cores, gpus, mem) \
                            and not (avoid and candidate.name in avoid):
                        node = candidate
                if node is None:
                    node = self._find_fit(cores, gpus, mem,
                                          self._rr_index, avoid)
            if node is None:
                for slot in slots:  # rollback partial placement
                    self.nodes[slot.node_index].release(slot)
                return None
            slots.append(node.allocate(cores, gpus, mem))
        if group and group not in self._colocate_node:
            self._colocate_node[group] = slots[0].node_index
        if affinity is not None:
            self._affinity_node[affinity] = slots[0].node_index
        self._rr_index = (slots[-1].node_index + 1) % len(self.nodes)
        return slots
