"""Reference agent scheduler: the executable placement specification.

This is a line-for-line preservation of the seed's quadratic scheduler --
grant-then-rescan over a sorted pending list, linear first-fit over all
nodes -- kept as the *semantic oracle* for the indexed production scheduler
(:class:`repro.pilot.agent.scheduler.AgentScheduler`):

* the placement-equivalence property test replays randomized
  submit/release/crash/withdraw traffic through both implementations and
  asserts identical grant order and slot assignments;
* the scheduler-throughput benchmark measures it as the pre-refactor
  baseline, so the reported speedups are against real executable history
  rather than a number in a commit message.

Do not optimise this module: its value is being obviously equivalent to
the seed semantics.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...hpc.node import NodeState, Slot
from ...sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..session import Session
    from ..task import Task

__all__ = ["ReferenceScheduler"]


class ReferenceScheduler:
    """Seed-semantics slot allocator: linear scans, rescan after grant."""

    def __init__(self, session: "Session", nodes, pilot_uid: str) -> None:
        from .scheduler import SchedulerError
        self._error = SchedulerError
        self.session = session
        self.nodes = nodes
        self.pilot_uid = pilot_uid
        self._pending: List[Tuple[int, int, "Task", Event]] = []
        self._seq = itertools.count()
        self._held: Dict[str, List[Slot]] = {}
        self._colocate_node: Dict[str, int] = {}
        self._affinity_node: Dict[str, int] = {}
        self._rr_index = 0

    # -- validation ----------------------------------------------------------
    def _feasible(self, task: "Task") -> bool:
        d = task.description
        per_node_ok = any(
            node.num_cores >= d.cores_per_rank
            and node.num_gpus >= d.gpus_per_rank
            and node.mem_gb >= d.mem_per_rank_gb
            for node in self.nodes)
        if not per_node_ok:
            return False
        total_cores = sum(n.num_cores for n in self.nodes)
        total_gpus = sum(n.num_gpus for n in self.nodes)
        return task.n_cores <= total_cores and task.n_gpus <= total_gpus

    def _find_fit(self, cores: int, gpus: int, mem_gb: float,
                  start: int, avoid) -> Optional[NodeState]:
        """The seed's linear first-fit scan with soft-avoid deferral."""
        n = len(self.nodes)
        deferred: Optional[NodeState] = None
        for off in range(n):
            node = self.nodes[(start + off) % n]
            if node.fits(cores, gpus, mem_gb):
                if avoid and node.name in avoid:
                    deferred = deferred or node
                    continue
                return node
        return deferred

    # -- public API ------------------------------------------------------------
    def schedule(self, task: "Task") -> Event:
        event = self.session.engine.event()
        if task.uid in self._held:
            event.fail(self._error(f"{task.uid} already holds slots"))
            return event
        if not self._feasible(task):
            event.fail(self._error(
                f"{task.uid} can never fit on pilot {self.pilot_uid}: "
                f"needs {task.n_cores}c/{task.n_gpus}g"))
            return event
        self._pending.append(
            (-task.description.priority, next(self._seq), task, event))
        self._pending.sort(key=lambda entry: entry[:2])
        self._try_schedule()
        return event

    def release(self, task: "Task") -> None:
        slots = self._held.pop(task.uid, None)
        if slots is None:
            raise self._error(f"{task.uid} holds no slots")
        for slot in slots:
            self.nodes[slot.node_index].release(slot)
        task.slots = []
        self._try_schedule()

    def withdraw(self, task: "Task") -> bool:
        for entry in self._pending:
            if entry[2] is task:
                self._pending.remove(entry)
                return True
        return False

    def kick(self) -> None:
        self._try_schedule()

    def held_on_node(self, node_index: int) -> List[str]:
        return [uid for uid, slots in self._held.items()
                if any(s.node_index == node_index for s in slots)]

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    @property
    def held_tasks(self) -> List[str]:
        return list(self._held)

    # -- placement ---------------------------------------------------------------
    def _place(self, task: "Task") -> Optional[List[Slot]]:
        d = task.description
        slots: List[Slot] = []
        group = d.tags.get("colocate") if d.tags else None
        affinity = d.tags.get("affinity") if d.tags else None
        if affinity is None:
            affinity = getattr(task, "affinity_key", None)
        pinned: Optional[int] = self._colocate_node.get(group) \
            if group else None
        preferred: Optional[int] = self._affinity_node.get(affinity) \
            if affinity is not None else None
        avoid = getattr(task, "avoid_nodes", None)
        for _rank in range(d.ranks):
            node: Optional[NodeState]
            if pinned is not None:
                node = self.nodes[pinned]
                if not node.fits(d.cores_per_rank, d.gpus_per_rank,
                                 d.mem_per_rank_gb):
                    node = None
            else:
                node = None
                if preferred is not None:
                    candidate = self.nodes[preferred]
                    if candidate.fits(d.cores_per_rank, d.gpus_per_rank,
                                      d.mem_per_rank_gb) \
                            and not (avoid and candidate.name in avoid):
                        node = candidate
                if node is None:
                    node = self._find_fit(
                        d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                        self._rr_index, avoid)
            if node is None:
                for slot in slots:
                    self.nodes[slot.node_index].release(slot)
                return None
            slots.append(node.allocate(d.cores_per_rank, d.gpus_per_rank,
                                       d.mem_per_rank_gb))
        if group and group not in self._colocate_node:
            self._colocate_node[group] = slots[0].node_index
        if affinity is not None:
            self._affinity_node[affinity] = slots[0].node_index
        self._rr_index = (slots[-1].node_index + 1) % len(self.nodes)
        return slots

    def _try_schedule(self) -> None:
        granted = True
        while granted:
            granted = False
            for entry in list(self._pending):
                _negprio, _seq, task, event = entry
                slots = self._place(task)
                if slots is None:
                    continue
                self._pending.remove(entry)
                self._held[task.uid] = slots
                task.slots = slots
                self.session.profiler.record(
                    self.session.engine.now, task.uid, "schedule_ok",
                    self.pilot_uid)
                event.succeed(slots)
                granted = True
                break
