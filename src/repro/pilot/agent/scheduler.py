"""Agent-side scheduler: places task ranks onto the pilot's nodes.

Reproduces RADICAL-Pilot's *continuous* scheduler semantics with the
extension the paper adds (§III: "We extended the existing Scheduler to enact
priority relations between services and tasks"):

* requests are served in (priority desc, arrival asc) order;
* any queued request that fits may start (no strict FIFO head-blocking,
  matching RP's behaviour for independent tasks);
* a multi-rank request is placed atomically -- all ranks get slots or the
  request stays queued;
* ``tags={"colocate": <group>}`` pins all members of a group to the node
  chosen for the group's first member;
* ``tags={"affinity": <key>}`` is the *soft* variant used for data
  locality: ranks prefer the node last used for the same key (where the
  key's data plausibly still sits in node-local storage) but fall back to
  any fitting node rather than queueing.

Invariant (property-tested, with and without affinity tags): no core/GPU
index is ever double-booked.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...hpc.node import NodeList, NodeState, Slot
from ...sim.events import Event
from ...utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..session import Session
    from ..task import Task

__all__ = ["AgentScheduler", "SchedulerError"]

log = get_logger("pilot.agent.scheduler")


class SchedulerError(Exception):
    """Raised for requests that can never be satisfied."""


class AgentScheduler:
    """Slot allocator over one pilot's node list."""

    def __init__(self, session: "Session", nodes: NodeList,
                 pilot_uid: str) -> None:
        self.session = session
        self.nodes = nodes
        self.pilot_uid = pilot_uid
        self._pending: List[Tuple[int, int, "Task", Event]] = []
        self._seq = itertools.count()
        self._held: Dict[str, List[Slot]] = {}
        self._colocate_node: Dict[str, int] = {}
        self._affinity_node: Dict[str, int] = {}  # soft data-affinity memory
        self._rr_index = 0  # round-robin start node for spreading load

    # -- validation ----------------------------------------------------------
    def _feasible(self, task: "Task") -> bool:
        """Could the request ever fit on an *empty* pilot?"""
        d = task.description
        per_node_ok = any(
            node.num_cores >= d.cores_per_rank
            and node.num_gpus >= d.gpus_per_rank
            and node.mem_gb >= d.mem_per_rank_gb
            for node in self.nodes)
        if not per_node_ok:
            return False
        total_cores = sum(n.num_cores for n in self.nodes)
        total_gpus = sum(n.num_gpus for n in self.nodes)
        return task.n_cores <= total_cores and task.n_gpus <= total_gpus

    # -- public API ------------------------------------------------------------
    def schedule(self, task: "Task") -> Event:
        """Request slots for *task*; event succeeds with ``List[Slot]``."""
        event = self.session.engine.event()
        if task.uid in self._held:
            event.fail(SchedulerError(f"{task.uid} already holds slots"))
            return event
        if not self._feasible(task):
            event.fail(SchedulerError(
                f"{task.uid} can never fit on pilot {self.pilot_uid}: "
                f"needs {task.n_cores}c/{task.n_gpus}g"))
            return event
        self._pending.append(
            (-task.description.priority, next(self._seq), task, event))
        self._pending.sort(key=lambda entry: entry[:2])
        self._try_schedule()
        return event

    def release(self, task: "Task") -> None:
        """Return a task's slots and re-run placement for waiters."""
        slots = self._held.pop(task.uid, None)
        if slots is None:
            raise SchedulerError(f"{task.uid} holds no slots")
        for slot in slots:
            self.nodes[slot.node_index].release(slot)
        task.slots = []
        self._try_schedule()

    def withdraw(self, task: "Task") -> bool:
        """Remove a queued (not yet granted) request.  True if found."""
        for entry in self._pending:
            if entry[2] is task:
                self._pending.remove(entry)
                return True
        return False

    def kick(self) -> None:
        """Re-run placement (e.g. after a crashed node was repaired)."""
        self._try_schedule()

    def held_on_node(self, node_index: int) -> List[str]:
        """Uids of tasks holding at least one slot on the given node."""
        return [uid for uid, slots in self._held.items()
                if any(s.node_index == node_index for s in slots)]

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    @property
    def held_tasks(self) -> List[str]:
        return list(self._held)

    # -- placement ---------------------------------------------------------------
    def _place(self, task: "Task") -> Optional[List[Slot]]:
        """Try to place all ranks; returns slots or None (state rolled back)."""
        d = task.description
        slots: List[Slot] = []
        group = d.tags.get("colocate") if d.tags else None
        affinity = d.tags.get("affinity") if d.tags else None
        if affinity is None:  # placement-derived hint (never user tags)
            affinity = getattr(task, "affinity_key", None)
        pinned: Optional[int] = self._colocate_node.get(group) \
            if group else None
        preferred: Optional[int] = self._affinity_node.get(affinity) \
            if affinity is not None else None
        avoid = getattr(task, "avoid_nodes", None)
        for _rank in range(d.ranks):
            node: Optional[NodeState]
            if pinned is not None:
                # colocation is a *hard* constraint: the pin wins even over
                # the retry policy's failed-node memory
                node = self.nodes[pinned]
                if not node.fits(d.cores_per_rank, d.gpus_per_rank,
                                 d.mem_per_rank_gb):
                    node = None
            else:
                node = None
                if preferred is not None:  # soft: fall through on no fit
                    candidate = self.nodes[preferred]
                    if candidate.fits(d.cores_per_rank, d.gpus_per_rank,
                                      d.mem_per_rank_gb) \
                            and not (avoid and candidate.name in avoid):
                        node = candidate
                if node is None:
                    node = self.nodes.find_fit(
                        d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                        start=self._rr_index, avoid=avoid)
            if node is None:
                for slot in slots:  # rollback partial placement
                    self.nodes[slot.node_index].release(slot)
                return None
            slots.append(node.allocate(d.cores_per_rank, d.gpus_per_rank,
                                       d.mem_per_rank_gb))
        if group and group not in self._colocate_node:
            self._colocate_node[group] = slots[0].node_index
        if affinity is not None:
            self._affinity_node[affinity] = slots[0].node_index
        self._rr_index = (slots[-1].node_index + 1) % len(self.nodes)
        return slots

    def _try_schedule(self) -> None:
        """Grant every queued request that currently fits (priority order)."""
        granted = True
        while granted:
            granted = False
            for entry in list(self._pending):
                _negprio, _seq, task, event = entry
                slots = self._place(task)
                if slots is None:
                    continue
                self._pending.remove(entry)
                self._held[task.uid] = slots
                task.slots = slots
                self.session.profiler.record(
                    self.session.engine.now, task.uid, "schedule_ok",
                    self.pilot_uid)
                event.succeed(slots)
                granted = True
                break
