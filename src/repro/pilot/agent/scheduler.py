"""Agent-side scheduler: places task ranks onto the pilot's nodes.

Reproduces RADICAL-Pilot's *continuous* scheduler semantics with the
extension the paper adds (§III: "We extended the existing Scheduler to enact
priority relations between services and tasks"):

* requests are served in (priority desc, arrival asc) order;
* any queued request that fits may start (no strict FIFO head-blocking,
  matching RP's behaviour for independent tasks);
* a multi-rank request is placed atomically -- all ranks get slots or the
  request stays queued;
* ``tags={"colocate": <group>}`` pins all members of a group to the node
  chosen for the group's first member;
* ``tags={"affinity": <key>}`` is the *soft* variant used for data
  locality: ranks prefer the node last used for the same key (where the
  key's data plausibly still sits in node-local storage) but fall back to
  any fitting node rather than queueing.

Invariant (property-tested, with and without affinity tags): no core/GPU
index is ever double-booked.

**Hot-path design** (the control plane's throughput cap on leadership-class
scales -- see ``benchmarks/test_ablation_sched_throughput.py``):

* the pending queue is a set of per-*shape* binary heaps keyed on
  ``(-priority, seq)``, where a shape is everything feasibility-relevant
  about a request -- ``(cores, gpus, mem, ranks, colocate-group)``.  Soft
  hints (affinity, avoid) steer node *choice*, never placeability, so all
  members of a shape become placeable and unplaceable together;
* rescans are **event-driven**: an ``_infeasible`` shape memo records which
  shapes failed placement since capacity last *grew* (release, node repair,
  explicit kick).  Submitting into a memoised shape is an O(log n) enqueue
  with no placement attempt.  A capacity increase *wake-filters* the memo:
  only parked shapes that pass the free-capacity index's O(1)
  root-qualification (some up node could host one rank right now -- a
  necessary condition for placement) are woken; the rest stay parked
  without a doomed placement attempt.  Woken shapes enter a **feasible-
  shape ready heap** keyed on their head entry's ``(-priority, seq)``, so
  the grant pass picks the globally best pending request in O(log shapes)
  instead of a linear scan over every shape key (colocate-heavy mixes
  create one shape per group).  A single kick therefore grants every
  currently-feasible request without re-walking entries already rejected
  at the same capacity (the seed restarted a full scan of the queue after
  every grant);
* ``withdraw`` is O(1) via a uid->entry index with lazy heap deletion, and
  ``held_on_node`` reads a per-node held-task index instead of scanning
  every held slot;
* node search inside :meth:`_place` goes through the
  :class:`~repro.hpc.node.FreeCapacityIndex` (``NodeList.find_fit``),
  O(log nodes) instead of O(nodes).

The semantics are pinned to the seed implementation
(:class:`~repro.pilot.agent.reference.ReferenceScheduler`) by a
property test replaying random traffic through both and comparing grant
order and slot assignments.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ...hpc.node import NodeList, NodeState, Slot
from ...sim.events import Event
from ...utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..session import Session
    from ..task import Task

__all__ = ["AgentScheduler", "SchedulerError", "SchedulerStats"]

log = get_logger("pilot.agent.scheduler")

#: feasibility class of a request: per-rank resources, rank count and hard
#: colocation group (None for ungrouped requests)
ShapeKey = Tuple[int, int, float, int, Optional[str]]

#: pending-queue entry: [(-priority), seq, task, event, alive]
_ALIVE = 4


class SchedulerError(Exception):
    """Raised for requests that can never be satisfied."""


class SchedulerStats:
    """Hot-path counters (cheap enough to keep always-on)."""

    __slots__ = ("place_attempts", "grants", "passes", "memo_hits")

    def __init__(self) -> None:
        self.place_attempts = 0  # _place invocations (success or failure)
        self.grants = 0          # successful placements
        self.passes = 0          # _try_schedule pass executions
        self.memo_hits = 0       # submits enqueued without a placement try

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"<SchedulerStats {self.as_dict()}>"


class AgentScheduler:
    """Slot allocator over one pilot's node list."""

    def __init__(self, session: "Session", nodes: NodeList,
                 pilot_uid: str) -> None:
        self.session = session
        self.nodes = nodes
        self.pilot_uid = pilot_uid
        self._seq = itertools.count()
        #: per-shape pending heaps, entries ordered by (-priority, seq)
        self._shape_queues: Dict[ShapeKey, List[list]] = {}
        #: uid -> live pending entry (O(1) withdraw / duplicate check)
        self._entries: Dict[str, list] = {}
        self._pending_count = 0
        #: shapes that failed placement since capacity last increased
        self._infeasible: Set[ShapeKey] = set()
        #: feasible-shape heap: (head -priority, head seq, shape) of woken
        #: shapes, drained by _try_schedule in global head order
        self._ready: List[tuple] = []
        self._ready_shapes: Set[ShapeKey] = set()
        #: static per-rank-shape fit memo (node profiles never change)
        self._fit_cache: Dict[Tuple[int, int, float], bool] = {}
        self._held: Dict[str, List[Slot]] = {}
        #: node index -> {uid: slot count} (held_on_node without scans)
        self._node_held: Dict[int, Dict[str, int]] = {}
        self._colocate_node: Dict[str, int] = {}
        self._affinity_node: Dict[str, int] = {}  # soft data-affinity memory
        self._rr_index = 0  # round-robin start node for spreading load
        self.stats = SchedulerStats()
        # Observability (None-guarded: one attribute test on hot paths when
        # the plane is disabled, nothing else)
        obs = session.observability
        self._obs_metrics = obs.metrics if obs is not None else None
        if self._obs_metrics is not None:
            #: shape -> live pending entries (incremental, so the per-tick
            #: poll never scans the heaps)
            self._obs_shape_counts: Dict[ShapeKey, int] = {}
            self._obs_enqueued_at: Dict[str, float] = {}
            self._obs_grant_hist = self._obs_metrics.histogram(
                "scheduler_grant_latency_s", {"pilot": pilot_uid})
            self._obs_shapes_seen: Set[ShapeKey] = set()
            self._obs_metrics.add_poll(self._obs_poll)
        # Node repairs grow capacity outside this class's own entry points
        # (mark_up is public API; the fault injector's explicit kick() is
        # convention, not contract).  Subscribe to health-up changes so the
        # infeasible-shape memo can never go stale against a repair.
        for node in nodes:
            node._listeners.append(self._node_changed)

    def _node_changed(self, node: NodeState, kind: str) -> None:
        if kind == "up":
            self._capacity_increased([node])

    # -- observability -----------------------------------------------------------
    def _obs_poll(self) -> None:
        """Per-sample-tick snapshot of queue depth and core utilization."""
        metrics = self._obs_metrics
        pilot = {"pilot": self.pilot_uid}
        metrics.gauge("scheduler_pending_total", pilot).set(
            self._pending_count)
        # zero shapes seen earlier so a drained shape's series returns to 0
        for shape in self._obs_shapes_seen:
            if shape not in self._obs_shape_counts:
                metrics.gauge("scheduler_pending",
                              {"pilot": self.pilot_uid,
                               "shape": str(shape)}).set(0)
        for shape, count in self._obs_shape_counts.items():
            self._obs_shapes_seen.add(shape)
            metrics.gauge("scheduler_pending",
                          {"pilot": self.pilot_uid,
                           "shape": str(shape)}).set(count)
        total = self.nodes.total_cores
        if total:
            used = total - self.nodes.total_free_cores
            metrics.gauge("pilot_core_utilization", pilot).set(used / total)

    def _obs_track_dequeue(self, shape: ShapeKey) -> None:
        """Shape-count bookkeeping for one entry leaving the queue.

        Takes the already-computed shape key: recomputing it per grant
        would dominate the instrumentation cost on the hot path.
        """
        counts = self._obs_shape_counts
        left = counts.get(shape, 1) - 1
        if left > 0:
            counts[shape] = left
        else:
            counts.pop(shape, None)

    # -- validation ----------------------------------------------------------
    def _feasible(self, task: "Task") -> bool:
        """Could the request ever fit on an *empty* pilot?  O(1)."""
        d = task.description
        key = (d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb)
        fits = self._fit_cache.get(key)
        if fits is None:
            # node profiles are static, so the per-shape answer is too
            fits = self.nodes.can_ever_fit(*key)
            self._fit_cache[key] = fits
        if not fits:
            return False
        return (task.n_cores <= self.nodes.total_cores
                and task.n_gpus <= self.nodes.total_gpus)

    @staticmethod
    def _shape_of(task: "Task") -> ShapeKey:
        d = task.description
        group = d.tags.get("colocate") if d.tags else None
        return (d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                d.ranks, group)

    # -- public API ------------------------------------------------------------
    def schedule(self, task: "Task") -> Event:
        """Request slots for *task*; event succeeds with ``List[Slot]``."""
        event = self.session.engine.event()
        if task.uid in self._held:
            event.fail(SchedulerError(f"{task.uid} already holds slots"))
            return event
        if task.uid in self._entries:
            event.fail(SchedulerError(f"{task.uid} is already queued"))
            return event
        if not self._feasible(task):
            event.fail(SchedulerError(
                f"{task.uid} can never fit on pilot {self.pilot_uid}: "
                f"needs {task.n_cores}c/{task.n_gpus}g"))
            return event
        shape = self._shape_of(task)
        if shape in self._infeasible:
            # Known-unplaceable at current capacity: enqueue without a
            # placement attempt.  Every queued sibling of this shape was
            # rejected since the last capacity increase, and capacity only
            # shrinks between increases, so trying again cannot succeed.
            self.stats.memo_hits += 1
            self._enqueue(shape, task, event)
            return event
        # Invariant: a shape absent from the memo has no queued entries
        # (they were all granted or the shape is memoised), so attempting
        # just this request preserves the global grant order -- all other
        # pending work is currently unplaceable by construction.
        slots = self._place(task)
        if slots is None:
            self._infeasible.add(shape)
            self._enqueue(shape, task, event)
            return event
        self._grant(task, event, slots)
        return event

    def release(self, task: "Task") -> None:
        """Return a task's slots and re-run placement for waiters."""
        slots = self._held.pop(task.uid, None)
        if slots is None:
            raise SchedulerError(f"{task.uid} holds no slots")
        changed: List[NodeState] = []
        seen: Set[int] = set()
        for slot in slots:
            self.nodes[slot.node_index].release(slot)
            self._drop_node_held(slot.node_index, task.uid)
            if slot.node_index not in seen:
                seen.add(slot.node_index)
                changed.append(self.nodes[slot.node_index])
        task.slots = []
        self._capacity_increased(changed)

    def withdraw(self, task: "Task") -> bool:
        """Remove a queued (not yet granted) request.  True if found.

        O(1): the entry is tombstoned in place and skipped lazily when its
        heap surfaces it.  No capacity changed, so no rescan is needed.
        """
        entry = self._entries.pop(task.uid, None)
        if entry is None:
            return False
        entry[_ALIVE] = False
        self._pending_count -= 1
        if self._obs_metrics is not None:
            self._obs_track_dequeue(self._shape_of(task))
            self._obs_enqueued_at.pop(task.uid, None)
        return True

    def kick(self) -> None:
        """Re-run placement (e.g. after a crashed node was repaired)."""
        self._capacity_increased()

    def held_on_node(self, node_index: int) -> List[str]:
        """Uids of tasks holding at least one slot on the given node."""
        return list(self._node_held.get(node_index, ()))

    @property
    def queue_length(self) -> int:
        return self._pending_count

    @property
    def held_tasks(self) -> List[str]:
        return list(self._held)

    # -- queue plumbing ----------------------------------------------------------
    def _enqueue(self, shape: ShapeKey, task: "Task", event: Event) -> None:
        entry = [-task.description.priority, next(self._seq), task, event,
                 True]
        heappush(self._shape_queues.setdefault(shape, []), entry)
        self._entries[task.uid] = entry
        self._pending_count += 1
        if self._obs_metrics is not None:
            self._obs_shape_counts[shape] = \
                self._obs_shape_counts.get(shape, 0) + 1
            self._obs_enqueued_at[task.uid] = self.session.engine.now

    def _peek(self, queue: List[list]) -> Optional[list]:
        """Head live entry of one shape heap (tombstones popped lazily)."""
        while queue:
            head = queue[0]
            if head[_ALIVE]:
                return head
            heappop(queue)
        return None

    def _grant(self, task: "Task", event: Event,
               slots: List[Slot]) -> None:
        self._held[task.uid] = slots
        for slot in slots:
            holders = self._node_held.setdefault(slot.node_index, {})
            holders[task.uid] = holders.get(task.uid, 0) + 1
        task.slots = slots
        self.stats.grants += 1
        now = self.session.engine.now
        self.session.profiler.record(now, task.uid, "schedule_ok",
                                     self.pilot_uid)
        if self._obs_metrics is not None:
            queued_at = self._obs_enqueued_at.pop(task.uid, now)
            self._obs_grant_hist.observe(now - queued_at)
        event.succeed(slots)

    def _drop_node_held(self, node_index: int, uid: str) -> None:
        holders = self._node_held.get(node_index)
        if holders is None:
            return
        count = holders.get(uid, 0) - 1
        if count > 0:
            holders[uid] = count
        else:
            holders.pop(uid, None)
            if not holders:
                del self._node_held[node_index]

    def _capacity_increased(
            self, changed: Optional[List[NodeState]] = None) -> None:
        """Capacity grew: wake qualifying parked shapes and re-place.

        A parked shape transitioned to placeable only if a node whose
        capacity just grew can now host one of its ranks: state elsewhere
        is unchanged, per-rank consumption is uniform (so greedy multi-
        rank success is independent of node choice order), and capacity
        only shrinks between increases.  With the *changed* node list
        (release, single-node repair) the filter is therefore exact per
        node: wake a shape iff some changed node fits one rank.  Without
        it (explicit kick) the filter falls back to the capacity index's
        O(1) root-qualification -- conservative but still sufficient.
        Either way, unwoken shapes would have failed their placement
        attempt, so skipping them is behaviour-preserving (the seed
        cleared the memo wholesale and paid a doomed ``_place`` per
        unplaceable shape).
        """
        infeasible = self._infeasible
        if infeasible:
            if changed is None:
                nodes = self.nodes
                woken = [shape for shape in infeasible
                         if nodes.root_qualifies(shape[0], shape[1],
                                                 shape[2])]
            else:
                woken = [shape for shape in infeasible
                         if any(node.fits(shape[0], shape[1], shape[2])
                                for node in changed)]
            for shape in woken:
                infeasible.discard(shape)
                self._push_ready(shape)
        self._try_schedule()

    def _push_ready(self, shape: ShapeKey) -> None:
        """Offer a shape's live head to the ready heap (dedup'd)."""
        if shape in self._ready_shapes:
            return
        queue = self._shape_queues.get(shape)
        head = self._peek(queue) if queue else None
        if head is None:
            self._shape_queues.pop(shape, None)  # fully drained shape
            return
        self._ready_shapes.add(shape)
        heappush(self._ready, (head[0], head[1], shape))

    # -- placement ---------------------------------------------------------------
    def _place(self, task: "Task") -> Optional[List[Slot]]:
        """Try to place all ranks; returns slots or None (state rolled back)."""
        self.stats.place_attempts += 1
        d = task.description
        slots: List[Slot] = []
        group = d.tags.get("colocate") if d.tags else None
        affinity = d.tags.get("affinity") if d.tags else None
        if affinity is None:  # placement-derived hint (never user tags)
            affinity = getattr(task, "affinity_key", None)
        pinned: Optional[int] = self._colocate_node.get(group) \
            if group else None
        preferred: Optional[int] = self._affinity_node.get(affinity) \
            if affinity is not None else None
        avoid = getattr(task, "avoid_nodes", None)
        for _rank in range(d.ranks):
            node: Optional[NodeState]
            if pinned is not None:
                # colocation is a *hard* constraint: the pin wins even over
                # the retry policy's failed-node memory
                node = self.nodes[pinned]
                if not node.fits(d.cores_per_rank, d.gpus_per_rank,
                                 d.mem_per_rank_gb):
                    node = None
            else:
                node = None
                if preferred is not None:  # soft: fall through on no fit
                    candidate = self.nodes[preferred]
                    if candidate.fits(d.cores_per_rank, d.gpus_per_rank,
                                      d.mem_per_rank_gb) \
                            and not (avoid and candidate.name in avoid):
                        node = candidate
                if node is None:
                    node = self.nodes.find_fit(
                        d.cores_per_rank, d.gpus_per_rank, d.mem_per_rank_gb,
                        start=self._rr_index, avoid=avoid)
            if node is None:
                for slot in slots:  # rollback partial placement
                    self.nodes[slot.node_index].release(slot)
                return None
            slots.append(node.allocate(d.cores_per_rank, d.gpus_per_rank,
                                       d.mem_per_rank_gb))
        if group and group not in self._colocate_node:
            self._colocate_node[group] = slots[0].node_index
        if affinity is not None:
            self._affinity_node[affinity] = slots[0].node_index
        self._rr_index = (slots[-1].node_index + 1) % len(self.nodes)
        return slots

    def _try_schedule(self) -> None:
        """Grant every woken request that currently fits (priority order).

        One pass over the feasible-shape ready heap: woken shapes surface
        in global head ``(-priority, seq)`` order, so each pick costs
        O(log shapes) instead of a linear scan over every shape key.  A
        popped shape is verified against its queue (withdraws make heap
        keys stale -- the live head is simply re-offered), then attempted:
        a grant re-offers the shape's next head (it may fit the remaining
        capacity), a failure parks the shape in the infeasible memo.  The
        heap always surfaces the minimal live head among non-parked
        shapes, so the grant order is identical to the seed's full scan,
        and each shape is attempted at most once past its final grant --
        O(grants + woken shapes) placement attempts per pass.
        """
        self.stats.passes += 1
        ready = self._ready
        ready_shapes = self._ready_shapes
        queues = self._shape_queues
        infeasible = self._infeasible
        while ready:
            key0, key1, shape = heappop(ready)
            ready_shapes.discard(shape)
            if shape in infeasible:
                continue
            queue = queues.get(shape)
            head = self._peek(queue) if queue else None
            if head is None:
                queues.pop(shape, None)  # fully drained shape
                continue
            if head[0] != key0 or head[1] != key1:
                self._push_ready(shape)  # stale key: re-offer live head
                continue
            task, event = head[2], head[3]
            slots = self._place(task)
            if slots is None:
                infeasible.add(shape)
                continue
            heappop(queue)
            del self._entries[task.uid]
            self._pending_count -= 1
            if self._obs_metrics is not None:
                self._obs_track_dequeue(shape)
            self._grant(task, event, slots)
            self._push_ready(shape)
