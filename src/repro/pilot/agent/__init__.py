"""The pilot agent: scheduler + executor running inside an allocation.

The agent is the pilot-side runtime (cf. RADICAL-Pilot's agent): it owns the
allocation's nodes, places work via :class:`AgentScheduler`, runs it via
:class:`AgentExecutor`, and guarantees slot release on every exit path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ...hpc.node import NodeList, Slot
from ...sim.events import Event, Interrupt
from .executor import AgentExecutor, ExecutionError
from .scheduler import AgentScheduler, SchedulerError
from .sharded import ShardedScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..session import Session
    from ..task import Task

__all__ = ["Agent", "AgentScheduler", "AgentExecutor", "ShardedScheduler",
           "SchedulerError", "ExecutionError"]


class Agent:
    """Per-pilot runtime combining scheduling and execution."""

    def __init__(self, session: "Session", pilot_uid: str, nodes: NodeList,
                 launch_method: str, platform_name: str) -> None:
        self.session = session
        self.pilot_uid = pilot_uid
        self.platform_name = platform_name
        self.scheduler = AgentScheduler(session, nodes, pilot_uid)
        self.executor = AgentExecutor(session, pilot_uid, launch_method)

    def run_task(self, task: "Task"):
        """Simulation process body: schedule -> execute -> release.

        Returns the task result.  On cancellation/failure the exception
        propagates to the caller *after* slots are released and queue
        entries withdrawn.
        """
        from ..states import TaskState  # local import avoids cycle

        task.advance(TaskState.AGENT_SCHEDULING, self.pilot_uid)
        grant = self.scheduler.schedule(task)
        try:
            slots = yield grant
        except Interrupt:
            self.scheduler.withdraw(task)
            raise
        task.advance(TaskState.AGENT_EXECUTING, self.pilot_uid)
        try:
            result = yield from self.executor.execute(task, slots)
        finally:
            self.scheduler.release(task)
        return result
