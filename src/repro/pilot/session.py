"""The Session: root object owning engine, fabric, bus and bookkeeping.

Mirrors RADICAL-Pilot's ``rp.Session``: every run starts by creating a
session, from which managers (:class:`PilotManager`, :class:`TaskManager`,
:class:`ServiceManager`) are derived.  The session also fixes the execution
mode:

* ``mode="virtual"``  -- discrete-event time; cost models; used by the
  benchmark harness to reproduce the paper's scales.
* ``mode="realtime"`` -- wall-clock pacing (``realtime_factor`` seconds of
  wall time per simulated second; 1.0 = true real time) plus a thread
  pool so function tasks execute *real* Python work.  Keep the factor above
  zero in this mode: at 0, *modeled* delays (launch costs, walltimes)
  collapse to zero wall time and race ahead of real worker threads.
"""

from __future__ import annotations

import gc
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..data import DataConfig, DataServices
    from ..observability import ObservabilityConfig, ObservabilityServices
    from ..resilience import ResilienceConfig, ResilienceServices

from ..comm.bus import MessageBus
from ..hpc.batch import BatchSystem
from ..hpc.network import Fabric
from ..hpc.platform import PLATFORMS, PlatformSpec, get_platform
from ..sim.engine import RealtimeEngine, SimulationEngine
from ..sim.events import Event
from ..sim.rng import RngHub
from ..utils.ids import IdRegistry
from ..utils.log import get_logger
from .profiler import Profiler

__all__ = ["Session"]

log = get_logger("pilot.session")


class Session:
    """Root container for one runtime instance."""

    MODES = ("virtual", "realtime")
    GC_POLICIES = ("default", "batch")
    #: gc_policy="batch" thresholds while run() is live: first-generation
    #: collections every 200k allocations, full sweeps ~four orders of
    #: magnitude rarer than stock CPython's (700, 10, 10)
    _GC_BATCH_THRESHOLD = (200_000, 100, 100)

    def __init__(self, mode: str = "virtual", seed: int = 0,
                 realtime_factor: float = 1.0,
                 platforms: Optional[List[Union[str, PlatformSpec]]] = None,
                 uid: Optional[str] = None,
                 data_config: Optional["DataConfig"] = None,
                 resilience_config: Optional["ResilienceConfig"] = None,
                 observability: Optional["ObservabilityConfig"] = None,
                 profile: str = "full",
                 profile_max_rows: Optional[int] = None,
                 profile_retention: str = "bound",
                 profile_spill: Optional[str] = None,
                 lanes: int = 1,
                 gc_policy: str = "default") -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        if gc_policy not in self.GC_POLICIES:
            raise ValueError(f"gc_policy must be one of {self.GC_POLICIES}")
        self.mode = mode
        self.ids = IdRegistry()
        self.uid = uid or self.ids.generate("session")
        self.rng_hub = RngHub(seed)
        #: ``lanes > 1`` builds a lane-partitioned event kernel (virtual
        #: mode only): producers owning disjoint state tag their events
        #: with a lane id, bounding per-queue depth while the merge layer
        #: keeps dispatch order bit-identical to the flat kernel.
        if mode == "virtual":
            self.engine: SimulationEngine = SimulationEngine(lanes=lanes)
        else:
            if lanes != 1:
                raise ValueError(
                    "lanes > 1 requires virtual mode (the realtime engine "
                    "paces against the wall clock and stays single-lane)")
            self.engine = RealtimeEngine(factor=realtime_factor)
        self.fabric = Fabric(self.rng_hub.stream("fabric"))
        #: profiling tier: "full" keeps every row, "durations" keeps first
        #: timestamps only (bounded memory), "off" disables recording;
        #: retention="ring" with max_rows keeps the *newest* rows (live
        #: monitoring) instead of the oldest.  ``profile_spill=`` names a
        #: JSONL path and switches retention to "spill": rows stream to
        #: disk in bounded chunks, finalised by close()
        if profile_spill is not None:
            profile_retention = "spill"
        self.profiler = Profiler(level=profile, max_rows=profile_max_rows,
                                 retention=profile_retention,
                                 spill_path=profile_spill)
        #: ``gc_policy="batch"`` trades collection frequency for pause
        #: cost around :meth:`run`: the pre-run object population (nodes,
        #: descriptions, queues -- alive for the whole run anyway) is
        #: frozen out of the collector's scan set and generation
        #: thresholds are raised so bursty dispatch batches stop
        #: triggering full-heap sweeps; thresholds are restored when
        #: run() returns.  Windowed campaigns bound live garbage by
        #: construction, which is what makes the sparse schedule safe.
        self._gc_policy = gc_policy
        self._batch: Dict[str, BatchSystem] = {}
        self._closed = False
        self._quiescing = False
        #: background keep-alive processes (heartbeats, fault loops, lease
        #: watchdogs) interrupted by quiesce() so run() can drain
        self._daemons: List[Any] = []
        self._daemon_prune_at = 64
        self._pool: Optional[ThreadPoolExecutor] = None
        self._data_config = data_config
        self._data: Optional["DataServices"] = None
        self._resilience_config = resilience_config
        self._resilience: Optional["ResilienceServices"] = None

        specs: List[PlatformSpec] = []
        for entry in (platforms if platforms is not None
                      else list(PLATFORMS.values())):
            specs.append(entry if isinstance(entry, PlatformSpec)
                         else get_platform(entry))
        self._platforms = {spec.name: spec for spec in specs}
        for spec in self._platforms.values():
            self.fabric.add_platform(spec)

        self.bus = MessageBus(self.engine, self.fabric)

        #: live telemetry plane (None unless ``observability=`` was given).
        #: A plain attribute, not a lazy property: hot paths guard with a
        #: single ``session.observability is not None`` test.
        self.observability: Optional["ObservabilityServices"] = None
        if observability is not None:
            from ..observability import ObservabilityServices
            self.observability = ObservabilityServices(self, observability)

        log.info("session %s created (mode=%s, seed=%d)", self.uid, mode, seed)

    # -- lookups -------------------------------------------------------------
    def platform(self, name: str) -> PlatformSpec:
        """Resolve a platform registered with this session."""
        try:
            return self._platforms[name]
        except KeyError:
            raise KeyError(
                f"platform {name!r} not attached to session "
                f"(have: {sorted(self._platforms)})") from None

    def platforms(self) -> Dict[str, PlatformSpec]:
        return dict(self._platforms)

    def batch_system(self, platform_name: str) -> BatchSystem:
        """The (lazily created) batch scheduler of one platform."""
        system = self._batch.get(platform_name)
        if system is None:
            spec = self.platform(platform_name)
            system = BatchSystem(
                self.engine, spec, self.rng_hub.stream(f"batch.{spec.name}"))
            self._batch[platform_name] = system
        return system

    def rng(self, stream: str):
        """A named deterministic RNG stream scoped to this session."""
        return self.rng_hub.stream(stream)

    @property
    def data(self) -> "DataServices":
        """The session's data subsystem (lazily created, shared by all
        DataManagers so replica/cache knowledge spans managers)."""
        if self._data is None:
            from ..data import DataServices
            self._data = DataServices(self, self._data_config)
        return self._data

    @property
    def resilience(self) -> Optional["ResilienceServices"]:
        """The resilience subsystem, or None when no config was given.

        Managers check for None and keep the seed's fail-fast semantics
        (no heartbeats, no retries) when resilience is off.
        """
        if self._resilience is None and self._resilience_config is not None:
            from ..resilience import ResilienceServices
            self._resilience = ResilienceServices(self,
                                                  self._resilience_config)
        return self._resilience

    @property
    def now(self) -> float:
        return self.engine.now

    # -- campaign facade ---------------------------------------------------------
    def campaign_runner(self, task_manager,
                        window: Optional[int] = None):
        """A :class:`~repro.workflows.campaign.CampaignRunner` on this
        session: streaming, dependency-driven execution of one or more
        workflow graphs with optional backpressure (*window* bounds the
        campaign's concurrently driven tasks)."""
        from ..workflows.campaign import CampaignRunner
        return CampaignRunner(self, task_manager, window=window)

    # -- performance attribution facade ------------------------------------------
    def attribution(self, makespan: Optional[float] = None):
        """Performance attribution from the live telemetry plane.

        Shorthand for ``session.observability.attribution()``: the span
        forest interpreted as per-task phase breakdowns, the campaign
        critical path, and what-if makespan lower bounds (see
        :mod:`repro.observability.attribution`).  Requires the session to
        run with ``observability=`` and the tracing plane on.
        """
        if self.observability is None:
            raise RuntimeError(
                "attribution needs the telemetry plane: create the "
                "session with observability=ObservabilityConfig()")
        return self.observability.attribution(makespan=makespan)

    # -- real-work execution (realtime mode) ------------------------------------
    @property
    def worker_pool(self) -> ThreadPoolExecutor:
        """Thread pool used by executors to run real function tasks."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix=f"{self.uid}-worker")
        return self._pool

    # -- running -----------------------------------------------------------------
    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Drive the engine (see :meth:`SimulationEngine.run`).

        Under ``gc_policy="batch"`` the run executes with the session's
        steady-state objects frozen out of garbage collection and sparse
        collection thresholds; both are process-global, so the previous
        thresholds are restored (and frozen objects returned to the
        collector) before this returns -- nested/concurrent sessions in
        one process see their own policy only while *their* run is live.
        """
        if self._gc_policy != "batch" or not gc.isenabled():
            return self.engine.run(until=until)
        saved = gc.get_threshold()
        gc.collect()
        gc.freeze()
        gc.set_threshold(*self._GC_BATCH_THRESHOLD)
        try:
            return self.engine.run(until=until)
        finally:
            gc.set_threshold(*saved)
            gc.unfreeze()

    # -- quiesce / stop ----------------------------------------------------------
    @property
    def quiescing(self) -> bool:
        """True once :meth:`quiesce` has been called."""
        return self._quiescing

    def add_daemon(self, process) -> None:
        """Register a background keep-alive process for quiesce interruption.

        Daemons are infinite loops that keep the event queue alive by
        design -- pilot heartbeats, lease watchdogs, fault-injection loops.
        They must treat :class:`~repro.sim.events.Interrupt` as an orderly
        shutdown signal.

        Registering after :meth:`quiesce` stops the daemon immediately:
        a pilot that only activates during the final drain (e.g. one still
        in batch queue-wait when the campaign ended) must not re-arm
        heartbeats the quiesce can no longer reach.
        """
        if self._quiescing:
            process.interrupt("session quiesce")
            return
        self._daemons.append(process)
        # Amortised cleanup: long campaigns with pilot resubmission register
        # daemons per activation (one fault loop per node); completed loops
        # must not pin their dead pilot's state for the session lifetime.
        if len(self._daemons) >= self._daemon_prune_at:
            self._daemons = [p for p in self._daemons if p.is_alive]
            self._daemon_prune_at = max(64, 2 * len(self._daemons))

    def quiesce(self) -> None:
        """Signal session-scoped shutdown so ``run()`` drains cleanly.

        With resilience enabled, pilot heartbeats (and their watchdogs and
        fault loops) re-arm forever, which forced every campaign to run
        with ``until=`` and guess a horizon.  Quiescing interrupts all
        registered daemons: no further keep-alive events are scheduled, no
        lease is declared expired by the silence, and a final ``run()``
        processes whatever genuine work remains and returns.  Idempotent.
        """
        if self._quiescing:
            return
        self._quiescing = True
        daemons, self._daemons = self._daemons, []
        for process in daemons:
            process.interrupt("session quiesce")
        log.info("session %s quiescing at t=%.3f (%d daemons stopped)",
                 self.uid, self.engine.now, len(daemons))

    # -- lifecycle -----------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the session down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.profiler.close_spill()
        log.info("session %s closed at t=%.3f", self.uid, self.engine.now)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Session {self.uid} mode={self.mode} t={self.engine.now:.3f}>"
