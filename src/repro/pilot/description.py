"""Descriptions: the user-facing specifications of pilots, tasks, services.

Mirrors RADICAL-Pilot's ``PilotDescription`` / ``TaskDescription`` and the
paper's ``ServiceDescription`` extension (§III: "RADICAL-Pilot's execution
model now enables users to submit ServiceDescription and TaskDescription via
a unified API").  Descriptions are schema-validated attribute dicts
(:class:`repro.utils.config.Config`); entities are created from them by the
managers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..utils.config import Config, ConfigError

__all__ = [
    "PilotDescription",
    "TaskDescription",
    "ServiceDescription",
    "StagingDirective",
]


class StagingDirective(Config):
    """One data-staging action attached to a task.

    ``action`` is one of ``transfer`` (cross-platform copy over the fabric),
    ``copy`` (intra-platform copy) or ``link`` (no data movement).  Sizes
    drive the fabric's bandwidth model.
    """

    _schema = {
        "source": str,
        "target": str,
        "action": str,
        "size_bytes": (int, float),
    }
    _defaults = {"action": "transfer", "size_bytes": 0, "source": "",
                 "target": ""}

    ACTIONS = ("transfer", "copy", "link")

    def __init__(self, from_dict=None, **kwargs) -> None:
        super().__init__(from_dict, **kwargs)
        if self.action not in self.ACTIONS:
            raise ConfigError(
                f"staging action {self.action!r} not in {self.ACTIONS}")
        if self.size_bytes < 0:
            raise ConfigError("size_bytes must be >= 0")


class PilotDescription(Config):
    """Resource request for one pilot job."""

    _schema = {
        "resource": str,          # platform name (repro.hpc.platform)
        "nodes": int,             # whole-node allocation size
        "cores": int,             # alternative: derive nodes from cores
        "gpus": int,              # alternative: derive nodes from gpus
        "runtime_s": (int, float),  # walltime
        "queue": str,
        "project": str,
    }
    _defaults = {"nodes": 0, "cores": 0, "gpus": 0, "runtime_s": 3600.0,
                 "queue": "normal", "project": ""}

    def __init__(self, from_dict=None, **kwargs) -> None:
        super().__init__(from_dict, **kwargs)
        if not self.resource:
            raise ConfigError("PilotDescription.resource is required")
        if self.nodes <= 0 and self.cores <= 0 and self.gpus <= 0:
            raise ConfigError(
                "PilotDescription needs nodes, cores or gpus > 0")
        if self.runtime_s <= 0:
            raise ConfigError("runtime_s must be positive")

    def required_nodes(self, cores_per_node: int, gpus_per_node: int) -> int:
        """Whole nodes needed on a platform with the given per-node shape."""
        need = self.nodes
        if self.cores > 0:
            need = max(need, -(-self.cores // cores_per_node))
        if self.gpus > 0:
            if gpus_per_node == 0:
                raise ConfigError("pilot requests GPUs on a GPU-less platform")
            need = max(need, -(-self.gpus // gpus_per_node))
        return max(1, need)


class TaskDescription(Config):
    """Specification of one compute task.

    Execution payload is either an ``executable`` (modeled duration) or a
    Python ``function`` (really executed; see
    :mod:`repro.pilot.agent.executor`).  Resource shape follows RP:
    ``ranks`` x (``cores_per_rank``, ``gpus_per_rank``).
    """

    _schema = {
        "name": str,
        "executable": str,
        "arguments": list,
        "function": None,          # callable; validated below
        "fn_args": tuple,
        "fn_kwargs": dict,
        "ranks": int,
        "cores_per_rank": int,
        "gpus_per_rank": int,
        "mem_per_rank_gb": (int, float),
        "duration_s": (int, float),   # modeled compute duration
        "duration_jitter_s": (int, float),
        "pre_exec_s": (int, float),   # environment setup cost
        "input_staging": list,        # list[StagingDirective|dict]
        "output_staging": list,
        "tags": dict,                 # scheduler hints
        "priority": int,              # higher runs earlier
        "restartable": bool,
        "metadata": dict,
        "pilot": str,                 # optional explicit pilot uid binding
    }
    _defaults: Dict[str, Any] = {
        "name": "",
        "executable": "",
        "arguments": [],
        "function": None,
        "fn_args": (),
        "fn_kwargs": {},
        "ranks": 1,
        "cores_per_rank": 1,
        "gpus_per_rank": 0,
        "mem_per_rank_gb": 0.0,
        "duration_s": 0.0,
        "duration_jitter_s": 0.0,
        "pre_exec_s": 0.0,
        "input_staging": [],
        "output_staging": [],
        "tags": {},
        "priority": 0,
        "restartable": False,
        "metadata": {},
        "pilot": "",
    }

    def __init__(self, from_dict=None, **kwargs) -> None:
        super().__init__(from_dict, **kwargs)
        if self.function is not None and not callable(self.function):
            raise ConfigError("TaskDescription.function must be callable")
        if self.ranks < 1:
            raise ConfigError("ranks must be >= 1")
        if self.cores_per_rank < 1:
            raise ConfigError("cores_per_rank must be >= 1")
        if self.gpus_per_rank < 0:
            raise ConfigError("gpus_per_rank must be >= 0")
        if self.duration_s < 0 or self.pre_exec_s < 0:
            raise ConfigError("durations must be >= 0")
        self._normalise_staging("input_staging")
        self._normalise_staging("output_staging")

    def _normalise_staging(self, key: str) -> None:
        directives: List[StagingDirective] = []
        for item in self[key]:
            if isinstance(item, StagingDirective):
                directives.append(item)
            elif isinstance(item, dict):
                directives.append(StagingDirective(item))
            else:
                raise ConfigError(
                    f"{key} entries must be StagingDirective or dict")
        self._data[key] = directives


class ServiceDescription(TaskDescription):
    """A task that runs a long-lived service exposing an API (§III).

    Extends :class:`TaskDescription` with the service lifecycle knobs: which
    model/backend to instantiate, how long startup may take, how often to
    heartbeat, and where (local pilot or a remote platform) it runs.
    """

    _schema = dict(TaskDescription._schema)
    _schema.update({
        "model": str,               # model name served (e.g. "llama-8b")
        "backend": str,             # serving backend (e.g. "ollama")
        "startup_timeout_s": (int, float),
        "heartbeat_interval_s": (int, float),
        "max_concurrency": int,     # concurrent inferences per instance
        "max_batch_size": int,      # coalesced requests per dispatch
                                    # (0 = serving-host default)
        "max_queue_depth": int,     # admission bound (0 = unbounded)
        "endpoint_name": str,       # registry name (auto if empty)
        "remote_platform": str,     # non-empty -> runs off-pilot
        "persistent": bool,         # survives workload completion
    })
    _defaults = dict(TaskDescription._defaults)
    _defaults.update({
        "model": "noop",
        "backend": "ollama",
        "startup_timeout_s": 600.0,
        "heartbeat_interval_s": 10.0,
        "max_concurrency": 1,      # paper: services are single-threaded
        "max_batch_size": 0,       # paper: one request at a time
        "max_queue_depth": 0,      # paper: unbounded inbox
        "endpoint_name": "",
        "remote_platform": "",
        "persistent": False,
        # services usually hold one GPU (Exp 1: "each using one GPU")
        "gpus_per_rank": 1,
        "priority": 100,           # services schedule before compute tasks
    })

    def __init__(self, from_dict=None, **kwargs) -> None:
        super().__init__(from_dict, **kwargs)
        if self.startup_timeout_s <= 0:
            raise ConfigError("startup_timeout_s must be positive")
        if self.max_concurrency < 1:
            raise ConfigError("max_concurrency must be >= 1")
        if self.max_batch_size < 0:
            raise ConfigError("max_batch_size must be >= 0 (0 = default)")
        if self.max_queue_depth < 0:
            raise ConfigError("max_queue_depth must be >= 0 (0 = unbounded)")
        if self.heartbeat_interval_s <= 0:
            raise ConfigError("heartbeat_interval_s must be positive")
