"""DataManager: staging of task input/output data over the data subsystem.

The paper collects "existing data capabilities into a DataManager" (§III,
Fig. 2).  The seed implementation was a stopwatch: directives replayed
sequentially, every transfer billed at full link bandwidth, no memory of
what had already been moved.  This DataManager sits on the session's
:class:`repro.data.DataServices` instead:

* directives are **content-addressed** -- the same input staged by many
  tasks/iterations is one object with replicas, so warm-cache hits are free
  and concurrent stages of one object to one platform are coalesced
  (in-flight dedup);
* independent directives run **concurrently**, and concurrent transfers on
  one fabric link fair-share its bandwidth
  (:class:`repro.data.TransferScheduler`);
* completed transfers register **replicas** (durable at the data's origin,
  LRU-cached at the task platform), which feeds the TaskManager's
  data-affinity placement;
* ``link`` directives are free and are *not* counted as moved bytes.

``stage_duration`` keeps the seed's uncontended single-transfer estimate
(used by tests and back-of-envelope callers); actual staging goes through
the shared-bandwidth model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from ..data.objects import DataObject
from ..data.transfers import TransferAborted
from ..sim.events import Interrupt
from .description import StagingDirective

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session

__all__ = ["DataManager"]


class DataManager:
    """Executes staging directives as concurrent simulation processes."""

    def __init__(self, session: "Session",
                 client_platform: str = "localhost") -> None:
        self.session = session
        self.client_platform = client_platform
        self.uid = session.ids.generate("dmgr")
        self.data = session.data
        #: bytes actually moved over the fabric (free links/hits excluded)
        self.bytes_transferred = 0.0
        #: bytes a warm cache / in-flight dedup made free
        self.bytes_saved = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self.links_total = 0
        #: wall time of each real transfer this manager performed
        self.transfer_wait_s: List[float] = []
        obs = session.observability
        self._obs = obs
        self._obs_metrics = obs.metrics if obs is not None else None

    # -- endpoint/geometry helpers ----------------------------------------------
    def _endpoints(self, directive: StagingDirective, task_platform: str,
                   phase: str = "stage_in") -> Tuple[str, str]:
        """(src, dst) platforms for one directive in one phase."""
        if directive.action == "copy":
            return task_platform, task_platform
        if phase == "stage_out":
            return task_platform, self.client_platform
        return self.client_platform, task_platform

    def stage_duration(self, directive: StagingDirective,
                       task_platform: str) -> float:
        """Seconds one directive would take alone on the link (sampled)."""
        if directive.action == "link":
            return 0.0
        src, dst = self._endpoints(directive, task_platform)
        return self.session.fabric.transfer_time(
            src, dst, directive.size_bytes)

    # -- staging -----------------------------------------------------------------
    def stage(self, directives: Iterable[StagingDirective],
              task_platform: str, uid: str, phase: str):
        """Simulation process: perform directives *concurrently*.

        Records ``<phase>_start`` / ``<phase>_stop`` profile events for the
        owning entity *uid* (phase is ``stage_in`` or ``stage_out``).
        Returns the number of directives performed; the first directive
        failure (if any) is re-raised after all directives settle.
        """
        engine = self.session.engine
        profiler = self.session.profiler
        directives = list(directives)
        profiler.record(engine.now, uid, f"{phase}_start", self.uid)
        procs = [engine.process(self._stage_one(d, task_platform, phase, uid))
                 for d in directives]
        try:
            if procs:
                outcomes = yield engine.all_of(procs)
                errors = [v for v in outcomes.values()
                          if isinstance(v, BaseException)]
                if errors:
                    raise errors[0]
        except Interrupt:
            # task cancelled: stop the children too, so abandoned transfers
            # free their links instead of contending with live work
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("staging cancelled")
            raise
        finally:
            profiler.record(engine.now, uid, f"{phase}_stop", self.uid)
        return len(directives)

    def _stage_one(self, directive: StagingDirective, task_platform: str,
                   phase: str, owner_uid: str = ""):
        """Child process wrapper: never fails the engine, returns errors.

        Failing child processes that nobody awaits would crash the engine
        (the parent may already be cancelled and detached); instead errors
        -- including the Interrupt of a cancelled stage -- become return
        values that :meth:`stage` re-raises if it is still listening.
        """
        try:
            yield from self._perform(directive, task_platform, phase,
                                     owner_uid)
            return None
        except BaseException as exc:
            return exc

    def _perform(self, directive: StagingDirective, task_platform: str,
                 phase: str, owner_uid: str = ""):
        """Resolve one directive: free link, warm hit, dedup wait or move."""
        data = self.data
        if directive.action == "link":
            # No data movement: do not count toward bytes_transferred.
            self.links_total += 1
            return

        src, dst = self._endpoints(directive, task_platform, phase)
        obj = data.objects.intern(directive.source or directive.target,
                                  directive.size_bytes)

        # Warm-hit / dedup shortcuts apply to *inputs* only: stage-in reads
        # immutable shared datasets, but each stage-out carries a freshly
        # produced result -- a name collision with an earlier output must
        # still pay its own transfer.
        metrics = self._obs_metrics
        if phase != "stage_out":
            while True:
                if data.holds(dst, obj.oid):  # warm replica: free
                    data.touch(dst, obj.oid)
                    self.cache_hits += 1
                    self.bytes_saved += obj.size_bytes
                    if metrics is not None:
                        metrics.counter("data_cache_hits_total").inc()
                    return
                pending = data.inflight.get((obj.oid, dst))
                if pending is None or not data.config.dedup_inflight:
                    break
                try:
                    yield pending  # ride the in-flight transfer
                except TransferAborted:
                    continue  # the owner was cancelled: try again ourselves
                self.dedup_hits += 1
                self.bytes_saved += obj.size_bytes
                if metrics is not None:
                    metrics.counter("data_dedup_hits_total").inc()
                return

        # Only inputs register as in-flight (outputs are never dedup
        # targets, and must not shadow a same-named input transfer).
        key = (obj.oid, dst) if phase != "stage_out" else None
        done = self.session.engine.event()
        if key is not None:
            data.inflight[key] = done
        try:
            self.cache_misses += 1
            if metrics is not None:
                metrics.counter("data_cache_misses_total").inc()
            source = self._best_source(src, dst, obj)
            span = None
            obs = self._obs
            if obs is not None and obs.tracer is not None:
                # parent the transfer on the owning task's live root span
                # (falls back to a standalone trace for non-task staging)
                span = obs.tracer.start_span(
                    "transfer", "data",
                    parent=obs.tracer.task_root(owner_uid),
                    attrs={"src": source, "dst": dst,
                           "bytes": obj.size_bytes, "phase": phase})
            try:
                record = yield from data.transfers.transfer(
                    source, dst, obj.size_bytes, uid=self.uid)
            finally:
                if span is not None:
                    obs.tracer.end_span(span)
            self.bytes_transferred += obj.size_bytes
            self.transfer_wait_s.append(record.duration)
            self._register(obj, src, dst, directive.action, phase)
            done.succeed()
        except Interrupt as exc:
            # riders must not inherit our cancellation: hand them a typed
            # abort so they retry the transfer themselves
            if not done.triggered:
                done.fail(TransferAborted(str(exc.cause or "cancelled")))
                done.defuse()
            raise
        except BaseException as exc:
            if not done.triggered:
                done.fail(exc)
                done.defuse()  # waiters observe it; engine must not re-raise
            raise
        finally:
            if key is not None and data.inflight.get(key) is done:
                data.inflight.pop(key, None)

    def _register(self, obj: DataObject, src: str, dst: str, action: str,
                  phase: str) -> None:
        """Replica bookkeeping after a completed move.

        The client-side endpoint holds the durable origin copy; the task
        platform gets an evictable cache replica.  Durable registration
        happens first so an object is never both durable and LRU-tracked at
        the same location (eviction must never face a durable entry).
        """
        if action == "copy":
            self.data.register_durable(obj.oid, dst)
            return
        home, platform_side = ((dst, src) if phase == "stage_out"
                               else (src, dst))
        self.data.register_durable(obj.oid, home)
        self.data.admit(platform_side, obj)

    def _best_source(self, default_src: str, dst: str,
                     obj: DataObject) -> str:
        """Cheapest holder to pull from (contention-aware, deterministic)."""
        if default_src == dst:
            return default_src  # intra-platform copy: never reroute remotely
        candidates = set(self.data.replicas.holders(obj.oid))
        candidates.add(default_src)
        candidates.discard(dst)  # cannot pull from the destination
        if not candidates:
            return default_src
        known = self.session.fabric.platforms()
        usable = [c for c in candidates if c in known]
        if not usable:
            usable = [default_src]
        if len(usable) == 1:
            return usable[0]
        return min(usable, key=lambda c: (
            self.data.transfers.estimate(c, dst, obj.size_bytes), c))
