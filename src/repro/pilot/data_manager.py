"""DataManager: staging of task input/output data.

The paper collects "existing data capabilities into a DataManager" (§III,
Fig. 2).  Staging directives move bytes between the client side (where
workflow data lives) and the pilot's platform -- or between platforms, as
with the Cell Painting pipeline's Globus-managed 1.6 TB dataset.  Transfer
durations come from the fabric's latency+bandwidth model; ``link`` is free,
``copy`` is an intra-platform move.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from .description import StagingDirective

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session

__all__ = ["DataManager"]


class DataManager:
    """Executes staging directives as simulation processes."""

    def __init__(self, session: "Session",
                 client_platform: str = "localhost") -> None:
        self.session = session
        self.client_platform = client_platform
        self.uid = session.ids.generate("dmgr")
        #: total bytes moved (for reporting)
        self.bytes_transferred = 0.0

    def _endpoints(self, directive: StagingDirective, task_platform: str):
        """(src, dst) platforms for one directive."""
        if directive.action == "copy":
            return task_platform, task_platform
        return self.client_platform, task_platform

    def stage_duration(self, directive: StagingDirective,
                       task_platform: str) -> float:
        """Seconds one directive will take (sampled)."""
        if directive.action == "link":
            return 0.0
        src, dst = self._endpoints(directive, task_platform)
        return self.session.fabric.transfer_time(
            src, dst, directive.size_bytes)

    def stage(self, directives: Iterable[StagingDirective],
              task_platform: str, uid: str, phase: str):
        """Simulation process: perform directives sequentially.

        Records ``<phase>_start`` / ``<phase>_stop`` profile events for the
        owning entity *uid* (phase is ``stage_in`` or ``stage_out``).
        """
        engine = self.session.engine
        profiler = self.session.profiler
        directives = list(directives)
        profiler.record(engine.now, uid, f"{phase}_start", self.uid)
        for directive in directives:
            duration = self.stage_duration(directive, task_platform)
            if duration > 0:
                yield engine.timeout(duration)
            self.bytes_transferred += directive.size_bytes
        profiler.record(engine.now, uid, f"{phase}_stop", self.uid)
        return len(directives)
