"""TaskManager: accepts tasks, binds them to pilots, drives their lifecycle.

One driver process per task walks the pipeline of Fig. 2: TMGR scheduling
(pilot binding) -> input staging (DataManager) -> agent scheduling ->
execution -> output staging -> final state.  Failures are captured on the
task (never crash the manager); cancellation interrupts the driver at
whatever phase it is in, with slot cleanup guaranteed by the agent.

Pilot binding is **data-aware** by default: a task whose inputs already
(partially) live on some pilot's platform -- as replicas registered by the
data subsystem -- is bound to the pilot holding the largest share of its
input bytes, so warm caches are actually reached.  The policy degrades
gracefully: no staged inputs, no replicas anywhere, or a hot pilot already
carrying ``affinity_load_slack`` more live tasks than the least-loaded
candidate all fall back to round-robin.  Compute slots are released by the
agent *before* output staging runs, so stage-out never blocks the next
task's placement.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Union

from ..data import PLACEMENTS
from ..data.objects import object_id
from ..sim.events import Event, Interrupt, Process
from ..utils.log import get_logger
from .data_manager import DataManager
from .description import TaskDescription
from .states import PilotState, TaskState
from .task import Pilot, Task

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session

__all__ = ["TaskManager"]

log = get_logger("pilot.tmgr")


class TaskManager:
    """Manages compute tasks within one session."""

    def __init__(self, session: "Session",
                 client_platform: str = "localhost",
                 placement: Optional[str] = None) -> None:
        self.session = session
        self.uid = session.ids.generate("tmgr")
        self.data_manager = DataManager(session, client_platform)
        self.placement = placement or session.data.config.placement
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r} (known: {PLACEMENTS})")
        #: how often data affinity (vs round-robin fallback) decided binding
        self.affinity_placements = 0
        self._pilots: List[Pilot] = []
        self._tasks: Dict[str, Task] = {}
        self._drivers: Dict[str, Process] = {}
        self._callbacks: List[Callable[[Task, str], None]] = []
        self._rr = itertools.count()
        #: live (non-final) tasks bound per pilot uid, kept O(1) so
        #: placement never rescans the task table
        self._live_bound: Dict[str, int] = {}

    # -- pilot binding -----------------------------------------------------------
    def add_pilots(self, pilots: Union[Pilot, Iterable[Pilot]]) -> None:
        """Attach pilots; tasks are distributed round-robin among them."""
        if isinstance(pilots, Pilot):
            pilots = [pilots]
        for pilot in pilots:
            if pilot in self._pilots:
                continue
            self._pilots.append(pilot)
            self.session.engine.process(self._watch_pilot(pilot))

    def _watch_pilot(self, pilot: Pilot):
        """Cancel a dead pilot's still-running tasks."""
        state = yield pilot.finished
        victims = [t for t in self._tasks.values()
                   if t.pilot_uid == pilot.uid and not t.is_final]
        if victims:
            log.warning("%s went %s; cancelling %d tasks", pilot.uid, state,
                        len(victims))
            self.cancel_tasks(victims)

    def _select_pilot(self, task: Task) -> Pilot:
        if task.description.pilot:
            for pilot in self._pilots:
                if pilot.uid == task.description.pilot:
                    return pilot
            raise ValueError(
                f"{task.uid}: pilot {task.description.pilot!r} not attached")
        if not self._pilots:
            raise RuntimeError(
                "no pilots attached to this TaskManager; call add_pilots()")
        candidates = [p for p in self._pilots
                      if p.state not in PilotState.FINAL]
        if not candidates:
            raise RuntimeError("all attached pilots are final")
        if self.placement == "data_affinity":
            self._tag_node_affinity(task)
            if len(candidates) > 1:
                choice = self._affinity_choice(task, candidates)
                if choice is not None:
                    self.affinity_placements += 1
                    self.session.profiler.record(
                        self.session.engine.now, task.uid,
                        "placement_affinity", self.uid)
                    return choice
        return candidates[next(self._rr) % len(candidates)]

    def _tag_node_affinity(self, task: Task) -> None:
        """Propagate data affinity down to node placement.

        Marks the *task* (never the caller-owned description) with its
        dominant input object so the pilot's AgentScheduler softly prefers
        the node last used for that object.  Recomputed per submission, so
        reused descriptions never carry a stale hint; explicit user tags
        take precedence in the scheduler.
        """
        staging = [s for s in task.description.input_staging
                   if s.action == "transfer" and s.size_bytes > 0]
        if not staging:
            return
        dominant = max(staging, key=lambda s: s.size_bytes)
        task.affinity_key = object_id(dominant.source or dominant.target,
                                      dominant.size_bytes)

    def _live_load(self, pilot: Pilot) -> int:
        """Non-final tasks currently bound to *pilot* (placement pressure)."""
        return self._live_bound.get(pilot.uid, 0)

    def _affinity_choice(self, task: Task,
                         candidates: List[Pilot]) -> Optional[Pilot]:
        """The pilot whose platform holds the most input bytes, or None.

        Returns None (round-robin fallback) when the task stages nothing,
        no candidate platform holds any of its inputs, or every best-scoring
        pilot is overloaded relative to the least-loaded candidate by more
        than the configured slack.
        """
        staging = task.description.input_staging
        if not staging:
            return None
        data = self.session.data
        pairs = data.input_objects(staging)  # digest once, score per pilot
        scores = {p.uid: data.resident_object_bytes(p.platform.name, pairs)
                  for p in candidates}
        best = max(scores.values())
        if best <= 0:
            return None
        top = [p for p in candidates if scores[p.uid] >= best]
        min_load = min(self._live_load(p) for p in candidates)
        slack = data.config.affinity_load_slack
        top = [p for p in top if self._live_load(p) <= min_load + slack]
        if not top:
            return None
        if len(top) == 1:
            return top[0]
        return top[next(self._rr) % len(top)]

    # -- submission ----------------------------------------------------------------
    def submit_tasks(
        self, descriptions: Union[TaskDescription, Iterable[TaskDescription]],
    ) -> List[Task]:
        """Submit task descriptions; returns live task handles."""
        if isinstance(descriptions, TaskDescription):
            descriptions = [descriptions]
        tasks: List[Task] = []
        for desc in descriptions:
            task = Task(self.session, desc, self.session.ids.generate("task"))
            for callback in self._callbacks:
                task.on_state(callback)
            self._tasks[task.uid] = task
            self._drivers[task.uid] = self.session.engine.process(
                self._drive(task))
            tasks.append(task)
        return tasks

    def _drive(self, task: Task):
        """Driver process: full task lifecycle with failure capture."""
        try:
            yield from self._drive_bound(task)
        finally:
            if task.pilot_uid is not None:
                self._live_bound[task.pilot_uid] -= 1

    def _drive_bound(self, task: Task):
        d = task.description
        try:
            task.advance(TaskState.TMGR_SCHEDULING, self.uid)
            pilot = self._select_pilot(task)
            task.pilot_uid = pilot.uid
            self._live_bound[pilot.uid] = \
                self._live_bound.get(pilot.uid, 0) + 1
            if not pilot.is_active:
                yield pilot.became_active
            platform_name = pilot.platform.name

            if d.input_staging:
                task.advance(TaskState.TMGR_STAGING_INPUT, self.uid)
                yield from self.data_manager.stage(
                    d.input_staging, platform_name, task.uid, "stage_in")

            result = yield from pilot.agent.run_task(task)

            if d.output_staging:
                # run_task released the task's slots already: stage-out
                # overlaps with successor tasks' scheduling and execution
                # instead of holding compute hostage to the fabric.
                task.advance(TaskState.TMGR_STAGING_OUTPUT, self.uid)
                yield from self.data_manager.stage(
                    d.output_staging, platform_name, task.uid, "stage_out")

            task.result = result if result is not None else task.result
            task.finish(TaskState.DONE, self.uid)
        except Interrupt:
            task.finish(TaskState.CANCELED, self.uid)
        except Exception as exc:  # captured on the task, not raised
            if task.exception is None:
                task.exception = exc
            log.info("%s failed: %s", task.uid, exc)
            task.finish(TaskState.FAILED, self.uid)

    # -- waiting / control ----------------------------------------------------------
    def wait_tasks(self, tasks: Optional[Iterable[Task]] = None) -> Event:
        """Event succeeding once all given (default: all) tasks are final."""
        tasks = list(tasks) if tasks is not None else list(self._tasks.values())
        return self.session.engine.all_of([t.completed for t in tasks])

    def cancel_tasks(self, tasks: Union[Task, Iterable[Task]]) -> None:
        """Cancel tasks, wherever they are in the pipeline."""
        if isinstance(tasks, Task):
            tasks = [tasks]
        for task in tasks:
            if task.is_final:
                continue
            driver = self._drivers.get(task.uid)
            if driver is not None and driver.is_alive:
                driver.interrupt("cancelled by user")
            else:  # not yet started driving (shouldn't happen) -- force
                task.finish(TaskState.CANCELED, self.uid)

    def register_callback(self,
                          callback: Callable[[Task, str], None]) -> None:
        """Invoke ``callback(task, state)`` on every task state change."""
        self._callbacks.append(callback)
        for task in self._tasks.values():
            task.on_state(callback)

    # -- introspection -----------------------------------------------------------------
    def get(self, uid: str) -> Task:
        return self._tasks[uid]

    @property
    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    def counts_by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            counts[task.state] = counts.get(task.state, 0) + 1
        return counts
