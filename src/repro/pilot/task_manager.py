"""TaskManager: accepts tasks, binds them to pilots, drives their lifecycle.

One driver process per task walks the pipeline of Fig. 2: TMGR scheduling
(pilot binding) -> input staging (DataManager) -> agent scheduling ->
execution -> output staging -> final state.  Failures are captured on the
task (never crash the manager); cancellation interrupts the driver at
whatever phase it is in, with slot cleanup guaranteed by the agent.

Pilot binding is **data-aware** by default: a task whose inputs already
(partially) live on some pilot's platform -- as replicas registered by the
data subsystem -- is bound to the pilot holding the largest share of its
input bytes, so warm caches are actually reached.  The policy degrades
gracefully: no staged inputs, no replicas anywhere, or a hot pilot already
carrying ``affinity_load_slack`` more live tasks than the least-loaded
candidate all fall back to round-robin.  Compute slots are released by the
agent *before* output staging runs, so stage-out never blocks the next
task's placement.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Union

from ..data import PLACEMENTS
from ..data.objects import object_id
from ..resilience.failures import PilotLost, classify_failure
from ..sim.events import Event, Interrupt, Process
from ..utils.log import get_logger
from .data_manager import DataManager
from .description import TaskDescription
from .states import PilotState, TaskState
from .task import Pilot, Task

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session

__all__ = ["TaskManager", "SubmissionWindow"]

log = get_logger("pilot.tmgr")


class SubmissionWindow:
    """A counting slot pool bounding concurrently *driven* tasks.

    Windowed submission replaces the strictly serialized chunk path
    (chunk N+1 starts only when chunk N fully completed) with a sliding
    window: a new driver starts the moment any in-flight task completes,
    so the pipe stays full through heterogeneous-duration bags.  One
    window may be shared across many ``submit_tasks`` calls (and even
    TaskManagers) -- that is how the campaign engine applies *global*
    backpressure across every node of every concurrently running graph.

    Slots are acquired atomically per request (a waiter holds nothing
    while queued), so concurrent submitters sharing one window cannot
    deadlock on partially acquired bursts.  Admission is strict FIFO:
    each release reserves slots for (and wakes) exactly the queued
    requests that now fit, head first -- no thundering herd of waiters
    re-checking on every completion.
    """

    def __init__(self, engine, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_flight = 0
        #: high-water mark of concurrently held slots (observability)
        self.peak = 0
        self._waiters: deque = deque()   # (event, n) in arrival order

    def _note_peak(self) -> None:
        if self.in_flight > self.peak:
            self.peak = self.in_flight

    def acquire(self, n: int = 1):
        """Process body: block until *n* slots (capped at capacity) fit."""
        n = min(n, self.capacity)
        if not self._waiters and self.in_flight + n <= self.capacity:
            self.in_flight += n
            self._note_peak()
            return
        event = self.engine.event()
        self._waiters.append((event, n))
        yield event  # the slots were reserved by release() before the wake

    def release(self, n: int = 1) -> None:
        """Return *n* slots and admit whatever queued requests now fit."""
        self.in_flight -= n
        while self._waiters and \
                self.in_flight + self._waiters[0][1] <= self.capacity:
            event, need = self._waiters.popleft()
            self.in_flight += need
            self._note_peak()
            event.succeed(None)


class TaskManager:
    """Manages compute tasks within one session."""

    def __init__(self, session: "Session",
                 client_platform: str = "localhost",
                 placement: Optional[str] = None) -> None:
        self.session = session
        self.uid = session.ids.generate("tmgr")
        self.data_manager = DataManager(session, client_platform)
        self.placement = placement or session.data.config.placement
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r} (known: {PLACEMENTS})")
        #: how often data affinity (vs round-robin fallback) decided binding
        self.affinity_placements = 0
        self._pilots: List[Pilot] = []
        self._tasks: Dict[str, Task] = {}
        self._drivers: Dict[str, Process] = {}
        self._callbacks: List[Callable[[Task, str], None]] = []
        # batched state-transition dispatch (see register_batch_callback)
        self._batch_callbacks: List[
            Callable[[List[tuple]], None]] = []
        self._batch_buffer: List[tuple] = []
        self._batch_armed = False
        self._rr = itertools.count()
        #: live (non-final) tasks bound per pilot uid, kept O(1) so
        #: placement never rescans the task table
        self._live_bound: Dict[str, int] = {}
        #: rotated event; succeeds whenever pilots are attached, so retry
        #: plans waiting for capacity wake up on resubmissions
        self.pilots_changed: Event = session.engine.event()
        self._resilience = session.resilience
        if self._resilience is not None:
            self._resilience.register_task_manager(self)
        self._observability = session.observability
        if self._observability is not None:
            self._observability.attach_task_manager(self)

    # -- pilot binding -----------------------------------------------------------
    def add_pilots(self, pilots: Union[Pilot, Iterable[Pilot]]) -> None:
        """Attach pilots; tasks are distributed round-robin among them."""
        if isinstance(pilots, Pilot):
            pilots = [pilots]
        added = False
        for pilot in pilots:
            if pilot in self._pilots:
                continue
            self._pilots.append(pilot)
            self.session.engine.process(self._watch_pilot(pilot))
            added = True
        if added:
            fired, self.pilots_changed = (self.pilots_changed,
                                          self.session.engine.event())
            fired.succeed(None)

    def _watch_pilot(self, pilot: Pilot):
        """React to a pilot's end: cancel or fail its still-running tasks.

        An orderly end (DONE, user cancellation) cancels resident tasks as
        before.  A *failed* pilot under resilience delivers
        :class:`PilotLost` instead: the tasks physically died with their
        pilot, and their drivers hand the failure to the recovery engine
        -- which acts only once the heartbeat lease declares the pilot
        dead, never on this (oracle) event.
        """
        state = yield pilot.finished
        victims = [t for t in self._tasks.values()
                   if t.pilot_uid == pilot.uid and not t.is_final]
        if not victims:
            return
        if self._resilience is not None and state == PilotState.FAILED:
            log.warning("%s went %s; %d tasks lost, handing to recovery",
                        pilot.uid, state, len(victims))
            for task in victims:
                self.fail_task(task, PilotLost(pilot.uid, state))
        else:
            log.warning("%s went %s; cancelling %d tasks", pilot.uid, state,
                        len(victims))
            self.cancel_tasks(victims)

    def _select_pilot(self, task: Task) -> Pilot:
        if task.description.pilot:
            for pilot in self._pilots:
                if pilot.uid == task.description.pilot:
                    return pilot
            raise ValueError(
                f"{task.uid}: pilot {task.description.pilot!r} not attached")
        if not self._pilots:
            raise RuntimeError(
                "no pilots attached to this TaskManager; call add_pilots()")
        candidates = [p for p in self._pilots
                      if p.state not in PilotState.FINAL]
        if not candidates:
            raise RuntimeError("all attached pilots are final")
        if self._resilience is not None:
            # Late re-binding prefers pilots with a clean record; if every
            # candidate is blacklisted, use them anyway (degrade, not fail).
            blacklist = self._resilience.recovery.blacklisted_pilots
            healthy = [p for p in candidates if p.uid not in blacklist]
            if healthy:
                candidates = healthy
        if self.placement == "data_affinity":
            self._tag_node_affinity(task)
            if len(candidates) > 1:
                choice = self._affinity_choice(task, candidates)
                if choice is not None:
                    self.affinity_placements += 1
                    self.session.profiler.record(
                        self.session.engine.now, task.uid,
                        "placement_affinity", self.uid)
                    return choice
        return candidates[next(self._rr) % len(candidates)]

    def _tag_node_affinity(self, task: Task) -> None:
        """Propagate data affinity down to node placement.

        Marks the *task* (never the caller-owned description) with its
        dominant input object so the pilot's AgentScheduler softly prefers
        the node last used for that object.  Recomputed per submission, so
        reused descriptions never carry a stale hint; explicit user tags
        take precedence in the scheduler.
        """
        staging = [s for s in task.description.input_staging
                   if s.action == "transfer" and s.size_bytes > 0]
        if not staging:
            return
        dominant = max(staging, key=lambda s: s.size_bytes)
        task.affinity_key = object_id(dominant.source or dominant.target,
                                      dominant.size_bytes)

    def _live_load(self, pilot: Pilot) -> int:
        """Non-final tasks currently bound to *pilot* (placement pressure)."""
        return self._live_bound.get(pilot.uid, 0)

    def _affinity_choice(self, task: Task,
                         candidates: List[Pilot]) -> Optional[Pilot]:
        """The pilot whose platform holds the most input bytes, or None.

        Returns None (round-robin fallback) when the task stages nothing,
        no candidate platform holds any of its inputs, or every best-scoring
        pilot is overloaded relative to the least-loaded candidate by more
        than the configured slack.
        """
        staging = task.description.input_staging
        if not staging:
            return None
        data = self.session.data
        pairs = data.input_objects(staging)  # digest once, score per pilot
        scores = {p.uid: data.resident_object_bytes(p.platform.name, pairs)
                  for p in candidates}
        best = max(scores.values())
        if best <= 0:
            return None
        top = [p for p in candidates if scores[p.uid] >= best]
        min_load = min(self._live_load(p) for p in candidates)
        slack = data.config.affinity_load_slack
        top = [p for p in top if self._live_load(p) <= min_load + slack]
        if not top:
            return None
        if len(top) == 1:
            return top[0]
        return top[next(self._rr) % len(top)]

    # -- submission ----------------------------------------------------------------
    def submit_tasks(
        self, descriptions: Union[TaskDescription, Iterable[TaskDescription]],
        chunk_size: Optional[int] = None,
        window: Union[None, int, SubmissionWindow] = None,
        after: Optional[Event] = None,
        on_complete: Optional[Callable[[Task], None]] = None,
    ) -> List[Task]:
        """Submit task descriptions; returns live task handles.

        This is the **bulk path**: uids for the whole batch are generated
        under one lock acquisition and task handles are materialised
        up-front, so campaign code holds the full list immediately.

        *chunk_size* bounds control-plane pressure for very large batches:
        instead of spawning one driver process per task at submit time
        (100k simultaneous drivers means 100k live generators and queue
        entries before the first task finishes), drivers are started
        *chunk_size* tasks at a time -- without *window*, the next chunk
        starts only when the previous one has fully completed (strict
        serialization).

        *window* turns chunking into a sliding window: at most *window*
        tasks hold live drivers, and the next driver (or chunk of
        *chunk_size* drivers) starts as soon as slots free up, overlapping
        chunk N+1's submission with chunk N's completion.  Pass a shared
        :class:`SubmissionWindow` to bound in-flight tasks *across*
        multiple submit calls -- the campaign engine's backpressure.

        *after* defers driver start until the given event triggers
        (dependency-aware submission: handles exist immediately, drivers
        wait for the upstream completion event).  The event must be one
        that only succeeds (e.g. ``task.completed``, a node-done event).

        *on_complete* is invoked as ``on_complete(task)`` when each task's
        completion event fires, whatever the final state.

        Tasks cancelled before their drivers start are skipped, not
        resurrected.  ``None`` everywhere keeps the fully concurrent
        semantics.
        """
        if isinstance(descriptions, TaskDescription):
            descriptions = [descriptions]
        descriptions = list(descriptions)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if isinstance(window, int):
            window = SubmissionWindow(self.session.engine, window)
        uids = self.session.ids.generate_batch("task", len(descriptions))
        session = self.session
        callbacks = self._callbacks
        obs = self._observability
        tasks: List[Task] = []
        table = self._tasks
        for desc, uid in zip(descriptions, uids):
            task = Task(session, desc, uid)
            for callback in callbacks:
                task.on_state(callback)
            if on_complete is not None:
                task.completed.callbacks.append(
                    lambda event, t=task: on_complete(t))
            if obs is not None:
                obs.task_submitted(task)
            table[uid] = task
            tasks.append(task)
        if not tasks:
            return tasks
        deferred = after is not None and not after.processed
        if window is not None:
            session.engine.process(
                self._feed_window(tasks, window, chunk_size or 1, after))
        elif (chunk_size is None or chunk_size >= len(tasks)) and not deferred:
            engine_process = session.engine.process
            drivers = self._drivers
            for task in tasks:
                drivers[task.uid] = engine_process(self._drive(task))
        else:
            session.engine.process(
                self._feed_chunks(tasks, chunk_size or len(tasks), after))
        return tasks

    def _feed_chunks(self, tasks: List[Task], chunk_size: int,
                     after: Optional[Event] = None):
        """Feeder process: start drivers one chunk at a time.

        Bounds the number of simultaneously live driver generators (and
        with them pending queue depth on the agent side) without touching
        per-task semantics -- every task still gets its own driver with the
        full retry/cancel machinery once its chunk is up.
        """
        engine = self.session.engine
        if after is not None and not after.processed:
            yield after
        for lo in range(0, len(tasks), chunk_size):
            chunk = tasks[lo:lo + chunk_size]
            waits = []
            for task in chunk:
                if task.completed.triggered or task.is_final:
                    continue  # cancelled while queued behind earlier chunks
                self._drivers[task.uid] = engine.process(self._drive(task))
                waits.append(task.completed)
            if waits:
                yield engine.all_of(waits)

    def _feed_window(self, tasks: List[Task], window: SubmissionWindow,
                     chunk_size: int, after: Optional[Event] = None):
        """Feeder process: start drivers under a sliding in-flight window.

        Each task holds one window slot from driver start to completion;
        slots free as tasks finish, so submission overlaps completion
        instead of barriering on whole chunks.  With ``chunk_size > 1``
        drivers spawn in bursts (the slots for a burst are acquired
        atomically), preserving the spawn-batching of the chunked path.
        """
        engine = self.session.engine
        if after is not None and not after.processed:
            yield after
        chunk_size = min(chunk_size, window.capacity)
        for lo in range(0, len(tasks), chunk_size):
            chunk = [t for t in tasks[lo:lo + chunk_size]
                     if not (t.completed.triggered or t.is_final)]
            if not chunk:
                continue  # cancelled while queued behind the window
            yield from window.acquire(len(chunk))
            for task in chunk:
                if task.completed.triggered or task.is_final:
                    window.release()  # cancelled while we waited for slots
                    continue
                task.completed.callbacks.append(lambda event: window.release())
                self._drivers[task.uid] = engine.process(self._drive(task))

    def _drive(self, task: Task):
        """Driver process: attempt loop with policy-driven retries.

        Each attempt runs the full pipeline.  On failure the task advances
        to FAILED (observers see it) *without* completing; the recovery
        engine may then grant a retry -- its plan gates on failure
        detection (heartbeat leases), backs off and waits for pilot
        capacity -- after which the task moves through RESCHEDULING back
        into TMGR_SCHEDULING.  Exhausted or ungranted failures seal the
        task, delivering the completion event.  Without resilience
        configured every failure is terminal, exactly as before.
        """
        while True:
            reason = yield from self._attempt(task)
            if reason is None:
                return  # reached DONE or CANCELED
            task.advance(TaskState.FAILED, self.uid)
            plan = None
            if self._resilience is not None:
                plan = self._resilience.recovery.task_failed(
                    self, task, reason)
            if plan is None:
                task.seal()
                return
            try:
                retry = yield from plan
            except Interrupt:  # cancelled while waiting for recovery
                task.seal()
                return
            if not retry:
                task.seal()
                return
            task.advance(TaskState.RESCHEDULING, self.uid)
            task.prepare_restart()
            log.info("%s rescheduled (attempt %d)", task.uid, task.attempts)

    def _attempt(self, task: Task):
        """One full execution attempt.

        Returns None once the task reached DONE or CANCELED, or the
        :class:`FailureReason` of the failed attempt (the task is left in
        its last live state; the caller advances it to FAILED).
        """
        d = task.description
        phase = "binding"
        bound: Optional[str] = None
        try:
            task.advance(TaskState.TMGR_SCHEDULING, self.uid)
            pilot = self._select_pilot(task)
            task.pilot_uid = pilot.uid
            bound = pilot.uid
            self._live_bound[pilot.uid] = \
                self._live_bound.get(pilot.uid, 0) + 1
            if not pilot.is_active:
                yield pilot.became_active
            platform_name = pilot.platform.name

            if d.input_staging:
                phase = "stage_in"
                task.advance(TaskState.TMGR_STAGING_INPUT, self.uid)
                yield from self.data_manager.stage(
                    d.input_staging, platform_name, task.uid, "stage_in")

            phase = "agent"
            result = yield from pilot.agent.run_task(task)

            if d.output_staging:
                # run_task released the task's slots already: stage-out
                # overlaps with successor tasks' scheduling and execution
                # instead of holding compute hostage to the fabric.
                phase = "stage_out"
                task.advance(TaskState.TMGR_STAGING_OUTPUT, self.uid)
                yield from self.data_manager.stage(
                    d.output_staging, platform_name, task.uid, "stage_out")

            task.result = result if result is not None else task.result
            task.finish(TaskState.DONE, self.uid)
            return None
        except Interrupt as intr:
            cause = intr.cause
            if isinstance(cause, BaseException):
                # An infrastructure fault delivered via interrupt (node
                # crash, pilot loss): a failure, not a user cancellation.
                return self._attempt_failed(task, cause, phase)
            task.finish(TaskState.CANCELED, self.uid)
            return None
        except Exception as exc:  # captured on the task, not raised
            return self._attempt_failed(task, exc, phase)
        finally:
            if bound is not None:
                self._live_bound[bound] -= 1

    def _attempt_failed(self, task: Task, exc: BaseException, phase: str):
        """Record a structured failure reason for the live attempt."""
        if task.exception is None:
            task.exception = exc
        if task.failure is None or task.failure.attempt != task.attempts:
            task.record_failure(classify_failure(
                exc, at=self.session.engine.now, attempt=task.attempts,
                phase=phase, component=self.uid,
                wasted_core_s=(task.runtime_s or 0.0) * task.n_cores))
        log.info("%s failed (attempt %d, %s): %s", task.uid, task.attempts,
                 task.failure.origin, exc)
        return task.failure

    # -- waiting / control ----------------------------------------------------------
    def wait_tasks(self, tasks: Optional[Iterable[Task]] = None) -> Event:
        """Event succeeding once all given (default: all) tasks are final."""
        tasks = list(tasks) if tasks is not None else list(self._tasks.values())
        return self.session.engine.all_of([t.completed for t in tasks])

    def cancel_tasks(self, tasks: Union[Task, Iterable[Task]]) -> None:
        """Cancel tasks, wherever they are in the pipeline.

        A task sitting in FAILED awaiting a recovery decision is *not*
        final yet (its completion has not fired): cancelling it interrupts
        the pending retry, sealing the task as FAILED.
        """
        if isinstance(tasks, Task):
            tasks = [tasks]
        for task in tasks:
            if task.completed.triggered:
                continue
            driver = self._drivers.get(task.uid)
            if driver is not None and driver.is_alive:
                driver.interrupt("cancelled by user")
            elif task.is_final:  # failed, recovery pending but driver gone
                task.seal()
            else:  # queued behind an undriven chunk: cancel in place
                task.finish(TaskState.CANCELED, self.uid)

    def fail_task(self, task: Task, exc: BaseException) -> None:
        """Deliver an infrastructure fault to a task's driver.

        Used by the fault injector (node crashes) and the pilot watcher
        (pilot losses): the driver observes *exc* as the attempt's failure
        and consults the recovery engine instead of treating the
        interruption as a user cancellation.
        """
        if task.completed.triggered:
            return
        driver = self._drivers.get(task.uid)
        if driver is not None and driver.is_alive:
            driver.interrupt(exc)
        elif not task.is_final:
            task.record_failure(classify_failure(
                exc, at=self.session.engine.now, attempt=task.attempts,
                component=self.uid))
            task.finish(TaskState.FAILED, self.uid)

    def register_callback(self,
                          callback: Callable[[Task, str], None]) -> None:
        """Invoke ``callback(task, state)`` on every task state change."""
        self._callbacks.append(callback)
        for task in self._tasks.values():
            task.on_state(callback)

    def register_batch_callback(
            self, callback: Callable[[List[tuple]], None]) -> None:
        """Invoke ``callback([(task, state), ...])`` once per dispatch batch.

        The coalesced counterpart of :meth:`register_callback` for
        consumers that only need transitions in bulk (telemetry exporters,
        progress reporters, accounting).  Per-task transitions are
        buffered as they happen and flushed through **one** zero-delay
        engine hop per same-timestamp dispatch batch: when a vectorised
        grant (``ShardedScheduler.schedule_batch``) or a completion
        cascade moves N tasks at one simulated instant, subscribers see a
        single call with N ``(task, state)`` pairs -- in exact transition
        order -- instead of N separate dispatches.  Transitions of
        different timestamps are never merged.
        """
        if not self._batch_callbacks:
            self.register_callback(self._batch_tap)
        self._batch_callbacks.append(callback)

    def _batch_tap(self, task: Task, state: str) -> None:
        self._batch_buffer.append((task, state))
        if not self._batch_armed:
            self._batch_armed = True
            self.session.engine.call_later(0.0, self._flush_batch)

    def _flush_batch(self, _arg=None) -> None:
        self._batch_armed = False
        batch, self._batch_buffer = self._batch_buffer, []
        for callback in self._batch_callbacks:
            callback(batch)

    # -- introspection -----------------------------------------------------------------
    def get(self, uid: str) -> Task:
        return self._tasks[uid]

    @property
    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    @property
    def pilots(self) -> List[Pilot]:
        return list(self._pilots)

    def counts_by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            counts[task.state] = counts.get(task.state, 0) + 1
        return counts
