"""Experiment drivers: parameterised reproductions of the paper's §IV runs.

Three experiments (Table II):

* :func:`run_experiment1` -- bootstrap-time weak scaling on Frontier:
  1..640 llama-8b services, one GPU each (Fig. 3);
* :func:`run_experiment2` -- NOOP response-time strong/weak scaling with
  local (Delta) or remote (R3) services (Figs. 4-5);
* :func:`run_experiment3` -- llama-8b inference-time strong/weak scaling,
  local or remote (Fig. 6).

Each driver builds a fresh virtual-time session, runs the configuration to
completion and returns structured results (component arrays + stats), which
the benchmark harness renders as the paper's figure series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.client import InferenceResult, ServiceClient
from ..core.service_manager import ServiceHandle, ServiceManager
from ..pilot.description import PilotDescription, ServiceDescription
from ..pilot.pilot_manager import PilotManager
from ..pilot.session import Session
from .metrics import (
    BootstrapMetrics,
    ResponseMetrics,
    bootstrap_metrics,
    response_metrics,
)

__all__ = [
    "EXP1_INSTANCE_COUNTS",
    "STRONG_SCALING_GRID",
    "WEAK_SCALING_GRID",
    "REQUESTS_PER_CLIENT",
    "Exp1Result",
    "Exp23Result",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "run_service_workload",
]

#: §IV-B: "We increase the number of instances during each experiment run".
EXP1_INSTANCE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 20, 40, 80, 160, 320, 640)

#: §IV-C strong scaling: 16 clients against 1..16 services.
STRONG_SCALING_GRID: Tuple[Tuple[int, int], ...] = (
    (16, 1), (16, 2), (16, 4), (16, 8), (16, 16))

#: §IV-C weak scaling: clients == services.
WEAK_SCALING_GRID: Tuple[Tuple[int, int], ...] = (
    (1, 1), (2, 2), (4, 4), (8, 8), (16, 16))

#: §IV-C: "each client sending a fixed number of inference requests (1024)".
REQUESTS_PER_CLIENT = 1024


@dataclass
class Exp1Result:
    """One Experiment-1 run: BT decomposition at a given instance count."""

    n_services: int
    platform: str
    model: str
    metrics: BootstrapMetrics
    wallclock_s: float  # simulated time until all services READY

    def row(self) -> Dict[str, float]:
        means = self.metrics.component_means()
        return {
            "n_services": self.n_services,
            "launch_mean_s": means["launch"],
            "init_mean_s": means["init"],
            "publish_mean_s": means["publish"],
            "bt_mean_s": float(self.metrics.total.mean()),
            "bt_max_s": float(self.metrics.total.max()),
        }


def run_experiment1(n_services: int, seed: int = 0,
                    platform: str = "frontier",
                    model: str = "llama-8b",
                    backend: str = "ollama") -> Exp1Result:
    """Bootstrap *n_services* model instances, one GPU each (Fig. 3)."""
    if n_services < 1:
        raise ValueError("n_services must be >= 1")
    with Session(seed=seed, platforms=[platform, "localhost"]) as session:
        pmgr = PilotManager(session)
        smgr = ServiceManager(session, registry_platform=platform)
        (pilot,) = pmgr.submit_pilots(PilotDescription(
            resource=platform, gpus=n_services, runtime_s=1e7))
        descriptions = [
            ServiceDescription(model=model, backend=backend, gpus_per_rank=1,
                               startup_timeout_s=1e6)
            for _ in range(n_services)]
        handles = smgr.start_services(descriptions, pilot)
        t0 = session.now
        session.run(until=smgr.wait_ready(handles))
        wallclock = session.now - t0
        metrics = bootstrap_metrics(session.profiler,
                                    [h.uid for h in handles])
        return Exp1Result(n_services=n_services, platform=platform,
                          model=model, metrics=metrics,
                          wallclock_s=wallclock)


@dataclass
class Exp23Result:
    """One Experiment-2/3 run: RT decomposition for a client/service grid."""

    n_clients: int
    n_services: int
    deployment: str            # "local" | "remote"
    model: str
    n_requests_per_client: int
    metrics: ResponseMetrics
    makespan_s: float
    per_client: List[List[InferenceResult]] = field(default_factory=list)

    def row(self) -> Dict[str, float]:
        means = self.metrics.component_means()
        return {
            "clients": self.n_clients,
            "services": self.n_services,
            "rt_mean_s": float(self.metrics.response_time.mean()),
            "communication_mean_s": means["communication"],
            "service_mean_s": means["service"],
            "inference_mean_s": means["inference"],
            "throughput_rps": self.metrics.throughput(self.makespan_s),
        }


def run_service_workload(n_clients: int, n_services: int,
                         deployment: str = "local",
                         model: str = "noop",
                         n_requests: int = REQUESTS_PER_CLIENT,
                         seed: int = 0,
                         prompt: str = "noop request",
                         max_tokens: int = 128,
                         client_platform: str = "delta",
                         service_platform_remote: str = "r3",
                         backend: str = "ollama",
                         max_concurrency: int = 1,
                         balancer=None,
                         models: Optional[List[str]] = None) -> Exp23Result:
    """Common driver for Experiments 2 and 3.

    Local deployment bootstraps services on a Delta pilot (Table II:
    256 cores / 16 GPUs); remote deployment attaches persistent services on
    R3.  Clients run on Delta either way and each issues *n_requests*
    sequentially, round-robin over the available services (the paper's
    rudimentary load balancing).

    *balancer*: a shared :class:`~repro.core.load_balancer.LoadBalancer`
    used by every client (default: per-client round-robin).  *models*: a
    per-service model list overriding *model* (heterogeneous fleets for the
    load-balancing ablation).
    """
    if deployment not in ("local", "remote"):
        raise ValueError("deployment must be 'local' or 'remote'")
    if n_clients < 1 or n_services < 1:
        raise ValueError("n_clients and n_services must be >= 1")
    service_models = list(models) if models is not None \
        else [model] * n_services
    if len(service_models) != n_services:
        raise ValueError("models list must have n_services entries")

    with Session(seed=seed,
                 platforms=[client_platform, service_platform_remote,
                            "localhost"]) as session:
        smgr = ServiceManager(session, registry_platform=client_platform)
        handles: List[ServiceHandle]

        if deployment == "local":
            pmgr = PilotManager(session)
            (pilot,) = pmgr.submit_pilots(PilotDescription(
                resource=client_platform, cores=256, gpus=16, runtime_s=1e8))
            descriptions = [
                ServiceDescription(model=svc_model, backend=backend,
                                   gpus_per_rank=0 if svc_model == "noop" else 1,
                                   max_concurrency=max_concurrency,
                                   startup_timeout_s=1e6)
                for svc_model in service_models]
            handles = smgr.start_services(descriptions, pilot)
        else:
            handles = [
                smgr.start_remote(
                    ServiceDescription(model=svc_model, backend=backend,
                                       max_concurrency=max_concurrency),
                    platform=service_platform_remote)
                for svc_model in service_models]

        session.run(until=smgr.wait_ready(handles))
        targets = [h.address for h in handles]

        clients = [ServiceClient(session, platform=client_platform)
                   for _ in range(n_clients)]
        params = {"max_tokens": max_tokens}

        def client_proc(client: ServiceClient):
            results = yield from client.run_workload(
                targets, n_requests, prompt=prompt, params=params,
                balancer=balancer)
            return results

        t0 = session.now
        procs = [session.engine.process(client_proc(c)) for c in clients]
        session.run(until=session.engine.all_of(procs))
        makespan = session.now - t0

        all_results = [r for c in clients for r in c.results]
        return Exp23Result(
            n_clients=n_clients, n_services=n_services,
            deployment=deployment, model=model,
            n_requests_per_client=n_requests,
            metrics=response_metrics(all_results),
            makespan_s=makespan,
            per_client=[list(c.results) for c in clients])


def run_experiment2(n_clients: int, n_services: int,
                    deployment: str = "local",
                    n_requests: int = REQUESTS_PER_CLIENT,
                    seed: int = 0) -> Exp23Result:
    """NOOP response-time scaling (Figs. 4-5)."""
    return run_service_workload(
        n_clients, n_services, deployment=deployment, model="noop",
        n_requests=n_requests, seed=seed, prompt="noop")


def run_experiment3(n_clients: int, n_services: int,
                    deployment: str = "remote",
                    n_requests: int = 32,
                    max_tokens: int = 128,
                    seed: int = 0) -> Exp23Result:
    """llama-8b inference-time scaling (Fig. 6).

    Defaults to far fewer requests per client than Experiment 2: at ~3-8 s
    per inference the paper's 1024 requests would add nothing but simulated
    hours; the queueing/served-time shape is established within tens of
    requests per client (the benchmark harness can raise this).
    """
    return run_service_workload(
        n_clients, n_services, deployment=deployment, model="llama-8b",
        n_requests=n_requests, seed=seed,
        prompt="summarize the role of runtime systems in hybrid workflows",
        max_tokens=max_tokens)
