"""Experiment drivers: parameterised reproductions of the paper's §IV runs.

Three experiments (Table II):

* :func:`run_experiment1` -- bootstrap-time weak scaling on Frontier:
  1..640 llama-8b services, one GPU each (Fig. 3);
* :func:`run_experiment2` -- NOOP response-time strong/weak scaling with
  local (Delta) or remote (R3) services (Figs. 4-5);
* :func:`run_experiment3` -- llama-8b inference-time strong/weak scaling,
  local or remote (Fig. 6).

Each driver builds a fresh virtual-time session, runs the configuration to
completion and returns structured results (component arrays + stats), which
the benchmark harness renders as the paper's figure series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.autoscaler import AutoscalerConfig
from ..core.client import InferenceResult, ServiceClient
from ..core.service_manager import ServiceHandle, ServiceManager
from ..pilot.description import PilotDescription, ServiceDescription
from ..pilot.pilot_manager import PilotManager
from ..pilot.session import Session
from .metrics import (
    BootstrapMetrics,
    ResponseMetrics,
    bootstrap_metrics,
    response_metrics,
)

__all__ = [
    "EXP1_INSTANCE_COUNTS",
    "STRONG_SCALING_GRID",
    "WEAK_SCALING_GRID",
    "REQUESTS_PER_CLIENT",
    "Exp1Result",
    "Exp23Result",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "run_service_workload",
    "run_autoscaled_workload",
]

#: §IV-B: "We increase the number of instances during each experiment run".
EXP1_INSTANCE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 20, 40, 80, 160, 320, 640)

#: §IV-C strong scaling: 16 clients against 1..16 services.
STRONG_SCALING_GRID: Tuple[Tuple[int, int], ...] = (
    (16, 1), (16, 2), (16, 4), (16, 8), (16, 16))

#: §IV-C weak scaling: clients == services.
WEAK_SCALING_GRID: Tuple[Tuple[int, int], ...] = (
    (1, 1), (2, 2), (4, 4), (8, 8), (16, 16))

#: §IV-C: "each client sending a fixed number of inference requests (1024)".
REQUESTS_PER_CLIENT = 1024


@dataclass
class Exp1Result:
    """One Experiment-1 run: BT decomposition at a given instance count."""

    n_services: int
    platform: str
    model: str
    metrics: BootstrapMetrics
    wallclock_s: float  # simulated time until all services READY

    def row(self) -> Dict[str, float]:
        means = self.metrics.component_means()
        return {
            "n_services": self.n_services,
            "launch_mean_s": means["launch"],
            "init_mean_s": means["init"],
            "publish_mean_s": means["publish"],
            "bt_mean_s": float(self.metrics.total.mean()),
            "bt_max_s": float(self.metrics.total.max()),
        }


def run_experiment1(n_services: int, seed: int = 0,
                    platform: str = "frontier",
                    model: str = "llama-8b",
                    backend: str = "ollama") -> Exp1Result:
    """Bootstrap *n_services* model instances, one GPU each (Fig. 3)."""
    if n_services < 1:
        raise ValueError("n_services must be >= 1")
    with Session(seed=seed, platforms=[platform, "localhost"]) as session:
        pmgr = PilotManager(session)
        smgr = ServiceManager(session, registry_platform=platform)
        (pilot,) = pmgr.submit_pilots(PilotDescription(
            resource=platform, gpus=n_services, runtime_s=1e7))
        descriptions = [
            ServiceDescription(model=model, backend=backend, gpus_per_rank=1,
                               startup_timeout_s=1e6)
            for _ in range(n_services)]
        handles = smgr.start_services(descriptions, pilot)
        t0 = session.now
        session.run(until=smgr.wait_ready(handles))
        wallclock = session.now - t0
        metrics = bootstrap_metrics(session.profiler,
                                    [h.uid for h in handles])
        return Exp1Result(n_services=n_services, platform=platform,
                          model=model, metrics=metrics,
                          wallclock_s=wallclock)


@dataclass
class Exp23Result:
    """One Experiment-2/3 run: RT decomposition for a client/service grid."""

    n_clients: int
    n_services: int
    deployment: str            # "local" | "remote"
    model: str
    n_requests_per_client: int
    metrics: ResponseMetrics
    makespan_s: float
    per_client: List[List[InferenceResult]] = field(default_factory=list)
    #: admission-control rejections (bounded-queue shedding) across the fleet
    shed_total: int = 0
    #: client-side busy/timeout retries across all clients
    retries_total: int = 0
    #: requests that exhausted their retries without a successful reply
    #: (excluded from ``metrics``, see :func:`response_metrics`)
    failed_total: int = 0
    #: autoscaler (time, "up"|"down", count) actions, when autoscaling ran
    scale_events: List[Tuple[float, str, int]] = field(default_factory=list)
    #: autoscaler (time, instance count) samples, when autoscaling ran
    count_trace: List[Tuple[float, int]] = field(default_factory=list)

    def row(self) -> Dict[str, float]:
        means = self.metrics.component_means()
        return {
            "clients": self.n_clients,
            "services": self.n_services,
            "rt_mean_s": float(self.metrics.response_time.mean()),
            "communication_mean_s": means["communication"],
            "service_mean_s": means["service"],
            "inference_mean_s": means["inference"],
            "throughput_rps": self.metrics.throughput(self.makespan_s),
        }


def run_service_workload(n_clients: int, n_services: int,
                         deployment: str = "local",
                         model: str = "noop",
                         n_requests: int = REQUESTS_PER_CLIENT,
                         seed: int = 0,
                         prompt: str = "noop request",
                         max_tokens: int = 128,
                         client_platform: str = "delta",
                         service_platform_remote: str = "r3",
                         backend: str = "ollama",
                         max_concurrency: int = 1,
                         max_batch_size: int = 0,
                         max_queue_depth: int = 0,
                         client_timeout_s: Optional[float] = None,
                         balancer=None,
                         models: Optional[List[str]] = None) -> Exp23Result:
    """Common driver for Experiments 2 and 3 (and the batching ablation).

    Local deployment bootstraps services on a Delta pilot (Table II:
    256 cores / 16 GPUs); remote deployment attaches persistent services on
    R3.  Clients run on Delta either way and each issues *n_requests*
    sequentially, round-robin over the available services (the paper's
    rudimentary load balancing).

    *balancer*: a shared :class:`~repro.core.load_balancer.LoadBalancer`
    used by every client (default: per-client round-robin).  *models*: a
    per-service model list overriding *model* (heterogeneous fleets for the
    load-balancing ablation).  *max_batch_size* / *max_queue_depth*
    configure the adaptive data plane (0 keeps the paper's serial/unbounded
    baseline); *client_timeout_s* enables client-side request timeouts.
    """
    if deployment not in ("local", "remote"):
        raise ValueError("deployment must be 'local' or 'remote'")
    if n_clients < 1 or n_services < 1:
        raise ValueError("n_clients and n_services must be >= 1")
    service_models = list(models) if models is not None \
        else [model] * n_services
    if len(service_models) != n_services:
        raise ValueError("models list must have n_services entries")

    with Session(seed=seed,
                 platforms=[client_platform, service_platform_remote,
                            "localhost"]) as session:
        smgr = ServiceManager(session, registry_platform=client_platform)
        handles: List[ServiceHandle]

        if deployment == "local":
            pmgr = PilotManager(session)
            (pilot,) = pmgr.submit_pilots(PilotDescription(
                resource=client_platform, cores=256, gpus=16, runtime_s=1e8))
            descriptions = [
                ServiceDescription(model=svc_model, backend=backend,
                                   gpus_per_rank=0 if svc_model == "noop" else 1,
                                   max_concurrency=max_concurrency,
                                   max_batch_size=max_batch_size,
                                   max_queue_depth=max_queue_depth,
                                   startup_timeout_s=1e6)
                for svc_model in service_models]
            handles = smgr.start_services(descriptions, pilot)
        else:
            handles = [
                smgr.start_remote(
                    ServiceDescription(model=svc_model, backend=backend,
                                       max_concurrency=max_concurrency,
                                       max_batch_size=max_batch_size,
                                       max_queue_depth=max_queue_depth),
                    platform=service_platform_remote)
                for svc_model in service_models]

        session.run(until=smgr.wait_ready(handles))
        targets = [h.address for h in handles]

        clients = [ServiceClient(session, platform=client_platform,
                                 timeout_s=client_timeout_s)
                   for _ in range(n_clients)]
        params = {"max_tokens": max_tokens}

        def client_proc(client: ServiceClient):
            results = yield from client.run_workload(
                targets, n_requests, prompt=prompt, params=params,
                balancer=balancer)
            return results

        t0 = session.now
        procs = [session.engine.process(client_proc(c)) for c in clients]
        session.run(until=session.engine.all_of(procs))
        makespan = session.now - t0

        all_results = [r for c in clients for r in c.results]
        shed = sum(h.instance.shed_count for h in handles
                   if h.instance is not None)
        return Exp23Result(
            n_clients=n_clients, n_services=n_services,
            deployment=deployment, model=model,
            n_requests_per_client=n_requests,
            metrics=response_metrics(all_results),
            makespan_s=makespan,
            per_client=[list(c.results) for c in clients],
            shed_total=shed,
            retries_total=sum(c.retries for c in clients),
            failed_total=sum(1 for r in all_results if not r.ok))


def run_experiment2(n_clients: int, n_services: int,
                    deployment: str = "local",
                    n_requests: int = REQUESTS_PER_CLIENT,
                    seed: int = 0) -> Exp23Result:
    """NOOP response-time scaling (Figs. 4-5)."""
    return run_service_workload(
        n_clients, n_services, deployment=deployment, model="noop",
        n_requests=n_requests, seed=seed, prompt="noop")


def run_experiment3(n_clients: int, n_services: int,
                    deployment: str = "remote",
                    n_requests: int = 32,
                    max_tokens: int = 128,
                    seed: int = 0) -> Exp23Result:
    """llama-8b inference-time scaling (Fig. 6).

    Defaults to far fewer requests per client than Experiment 2: at ~3-8 s
    per inference the paper's 1024 requests would add nothing but simulated
    hours; the queueing/served-time shape is established within tens of
    requests per client (the benchmark harness can raise this).
    """
    return run_service_workload(
        n_clients, n_services, deployment=deployment, model="llama-8b",
        n_requests=n_requests, seed=seed,
        prompt="summarize the role of runtime systems in hybrid workflows",
        max_tokens=max_tokens)


def run_autoscaled_workload(n_clients: int = 16,
                            model: str = "llama-8b",
                            backend: str = "ollama",
                            burst_s: float = 180.0,
                            idle_s: float = 300.0,
                            n_bursts: int = 2,
                            autoscale: bool = True,
                            config: Optional[AutoscalerConfig] = None,
                            max_batch_size: int = 0,
                            max_queue_depth: int = 0,
                            max_tokens: int = 64,
                            seed: int = 0,
                            client_platform: str = "delta",
                            service_platform: str = "r3",
                            client_timeout_s: float = 120.0,
                            heartbeat_interval_s: float = 2.0,
                            ) -> Exp23Result:
    """Bursty-load scaling study: elastic instance counts vs a fixed fleet.

    *n_clients* clients hammer the fleet back-to-back during each of
    *n_bursts* windows of *burst_s* seconds, separated by *idle_s* of
    silence.  With ``autoscale=True`` an :class:`Autoscaler` (remote
    attachment, so launches are cheap) grows the fleet toward the
    queue-delay SLO during bursts and shrinks it back during idles; with
    ``autoscale=False`` the fleet stays at ``config.min_instances``.
    Clients resolve targets from the registry before every request (the
    fleet changes underneath them) and use join-shortest-queue routing over
    the published telemetry.

    Returns an :class:`Exp23Result` whose ``scale_events``/``count_trace``
    record the autoscaler's actions.
    """
    from ..core.load_balancer import JoinShortestQueueBalancer

    config = config or AutoscalerConfig()
    with Session(seed=seed,
                 platforms=[client_platform, service_platform,
                            "localhost"]) as session:
        smgr = ServiceManager(session, registry_platform=client_platform)
        description = ServiceDescription(
            model=model, backend=backend,
            max_batch_size=max_batch_size,
            max_queue_depth=max_queue_depth,
            heartbeat_interval_s=heartbeat_interval_s)
        scaler = smgr.start_autoscaler(description,
                                       remote_platform=service_platform,
                                       config=config)
        if not autoscale:
            scaler.stop()  # fleet frozen at min_instances
        session.run(until=smgr.wait_ready(scaler.handles))

        registry = smgr.registry

        def resolve():
            return [info.address for info in registry.list_services()]

        balancer = JoinShortestQueueBalancer(registry)
        clients = [ServiceClient(session, platform=client_platform,
                                 timeout_s=client_timeout_s)
                   for _ in range(n_clients)]
        params = {"max_tokens": max_tokens}
        engine = session.engine

        def client_proc(client: ServiceClient):
            for k in range(n_bursts):
                start = k * (burst_s + idle_s)
                if engine.now < start:
                    yield engine.timeout(start - engine.now)
                while engine.now < start + burst_s:
                    yield from client.run_workload(
                        resolve, 1, prompt="burst", params=params,
                        balancer=balancer)

        t0 = session.now
        procs = [session.engine.process(client_proc(c)) for c in clients]
        session.run(until=session.engine.all_of(procs))
        makespan = session.now - t0
        # Trailing cooldown: let the autoscaler observe the idle fleet and
        # shrink back before the trace is captured.
        session.run(until=session.now + idle_s)
        scaler.stop()

        all_results = [r for c in clients for r in c.results]
        # all_handles includes scaled-down instances: their sheds count too
        shed = sum(h.instance.shed_count for h in scaler.all_handles
                   if h.instance is not None)
        n_services = max((count for _, count in scaler.count_trace),
                         default=config.min_instances)
        return Exp23Result(
            n_clients=n_clients, n_services=n_services,
            deployment="remote", model=model,
            n_requests_per_client=len(all_results) // max(1, n_clients),
            metrics=response_metrics(all_results),
            makespan_s=makespan,
            per_client=[list(c.results) for c in clients],
            shed_total=shed,
            retries_total=sum(c.retries for c in clients),
            failed_total=sum(1 for r in all_results if not r.ok),
            scale_events=list(scaler.scale_events),
            count_trace=list(scaler.count_trace))
