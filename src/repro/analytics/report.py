"""Rendering: ASCII tables reproducing the paper's figure/table series.

The benchmark harness prints, for every figure and table of §IV, the rows
the paper plots -- so a reader can compare shapes (who dominates, where the
knee falls, how scaling behaves) without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["render_table", "format_seconds", "ReportBuilder"]


def format_seconds(value: float) -> str:
    """Human-scaled seconds: µs/ms/s picked by magnitude."""
    if value != value:  # NaN
        return "n/a"
    if abs(value) >= 1.0:
        return f"{value:.2f} s"
    if abs(value) >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    return f"{value * 1e6:.1f} µs"


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([
            cell if isinstance(cell, str)
            else format_seconds(cell) if isinstance(cell, float)
            else str(cell)
            for cell in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


class ReportBuilder:
    """Accumulates named sections and renders them together."""

    def __init__(self, title: str) -> None:
        self.title = title
        self._sections: List[str] = []

    def add_table(self, headers: Sequence[str], rows: Iterable[Sequence],
                  title: str = "") -> "ReportBuilder":
        self._sections.append(render_table(headers, rows, title))
        return self

    def add_text(self, text: str) -> "ReportBuilder":
        self._sections.append(text)
        return self

    def add_bars(self, mapping: Dict[str, float], title: str = "",
                 width: int = 40) -> "ReportBuilder":
        """Horizontal ASCII bar chart, scaled to the largest value.

        Used by the attribution engine's phase-breakdown summaries: a
        dominant phase should *look* dominant in a terminal.
        """
        lines = [title] if title else []
        peak = max(mapping.values(), default=0.0)
        key_width = max((len(k) for k in mapping), default=0)
        for key, value in mapping.items():
            bar = "#" * (round(width * value / peak) if peak > 0 else 0)
            lines.append(f"  {key.ljust(key_width)} |{bar} {value:g}")
        self._sections.append("\n".join(lines))
        return self

    def add_kv(self, mapping: Dict[str, object],
               title: str = "") -> "ReportBuilder":
        lines = [title] if title else []
        width = max((len(k) for k in mapping), default=0)
        for key, value in mapping.items():
            if isinstance(value, float):
                value = format_seconds(value)
            lines.append(f"  {key.ljust(width)} : {value}")
        self._sections.append("\n".join(lines))
        return self

    def render(self) -> str:
        bar = "#" * max(len(self.title) + 4, 40)
        head = f"{bar}\n# {self.title}\n{bar}"
        return "\n\n".join([head, *self._sections])

    def print(self) -> None:
        print("\n" + self.render() + "\n")
