"""Metric extraction: the paper's BT / RT / IT decompositions.

§IV defines three metrics:

* **Bootstrap Time (BT)** -- time for services to become available, split
  into ``launch`` (placing the service executable), ``init`` (loading and
  initialising the model) and ``publish`` (communicating the endpoint);
* **Response Time (RT)** -- time for a service to acknowledge a request,
  split into ``communication``, ``service`` (queue/parse/serialise) and
  ``inference``;
* **Inference Time (IT)** -- the inference component alone.

BT components come from profiler events recorded by the ServiceManager;
RT/IT come from the per-request :class:`~repro.core.client.InferenceResult`
records.  Everything is vectorised with numpy (means, stds, percentiles,
tails), since the paper reports distributions "across multiple task,
service, and model instances".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.client import InferenceResult
from ..pilot.profiler import Profiler

__all__ = [
    "DistStats",
    "dist_stats",
    "BootstrapMetrics",
    "bootstrap_metrics",
    "ResponseMetrics",
    "response_metrics",
    "DataMetrics",
    "data_metrics",
    "FailureMetrics",
    "failure_metrics",
]


@dataclass(frozen=True)
class DistStats:
    """Summary statistics of one duration distribution (seconds)."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float
    min: float
    max: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.4g}s std={self.std:.3g} "
                f"p50={self.p50:.4g} p95={self.p95:.4g}")


def dist_stats(values: Sequence[float]) -> DistStats:
    """Compute :class:`DistStats` (empty input yields NaNs, n=0).

    The mean and percentiles are clamped into ``[min, max]``: floating-point
    summation can push ``arr.mean()`` (and interpolated percentiles) a few
    ULPs outside the data range, which breaks the ``min <= mean <= max``
    invariant downstream consumers rely on.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return DistStats(0, nan, nan, nan, nan, nan, nan)
    lo, hi = float(arr.min()), float(arr.max())

    def clamp(x: float) -> float:
        return min(max(float(x), lo), hi)

    return DistStats(
        n=int(arr.size),
        mean=clamp(arr.mean()),
        std=float(arr.std()),
        p50=clamp(np.percentile(arr, 50)),
        p95=clamp(np.percentile(arr, 95)),
        min=lo,
        max=hi,
    )


@dataclass
class BootstrapMetrics:
    """Per-service BT component arrays plus their stats (Experiment 1)."""

    uids: List[str]
    launch: np.ndarray
    init: np.ndarray
    publish: np.ndarray
    total: np.ndarray

    @property
    def launch_stats(self) -> DistStats:
        return dist_stats(self.launch)

    @property
    def init_stats(self) -> DistStats:
        return dist_stats(self.init)

    @property
    def publish_stats(self) -> DistStats:
        return dist_stats(self.publish)

    @property
    def total_stats(self) -> DistStats:
        return dist_stats(self.total)

    def component_means(self) -> Dict[str, float]:
        return {
            "launch": float(self.launch.mean()) if self.launch.size else float("nan"),
            "init": float(self.init.mean()) if self.init.size else float("nan"),
            "publish": float(self.publish.mean()) if self.publish.size else float("nan"),
        }


def bootstrap_metrics(profiler: Profiler,
                      uids: Iterable[str]) -> BootstrapMetrics:
    """Extract BT components for the given service uids."""
    uids = list(uids)
    launch = profiler.durations(uids, "launch_start", "launch_stop")
    init = profiler.durations(uids, "init_start", "init_stop")
    publish = profiler.durations(uids, "publish_start", "publish_stop")
    total = profiler.durations(uids, "bootstrap_start", "bootstrap_stop")
    return BootstrapMetrics(uids=uids, launch=launch, init=init,
                            publish=publish, total=total)


@dataclass
class ResponseMetrics:
    """Per-request RT component arrays plus stats (Experiments 2-3)."""

    response_time: np.ndarray
    communication: np.ndarray
    service: np.ndarray
    inference: np.ndarray
    queue: np.ndarray
    n_requests: int = field(init=False)

    def __post_init__(self) -> None:
        self.n_requests = int(self.response_time.size)

    @property
    def rt_stats(self) -> DistStats:
        return dist_stats(self.response_time)

    @property
    def communication_stats(self) -> DistStats:
        return dist_stats(self.communication)

    @property
    def service_stats(self) -> DistStats:
        return dist_stats(self.service)

    @property
    def inference_stats(self) -> DistStats:
        return dist_stats(self.inference)

    @property
    def queue_stats(self) -> DistStats:
        return dist_stats(self.queue)

    def dominant_component(self) -> str:
        """Which component contributes most to mean RT."""
        means = {
            "communication": float(self.communication.mean()),
            "service": float(self.service.mean()),
            "inference": float(self.inference.mean()),
        }
        return max(means, key=means.get)

    def component_means(self) -> Dict[str, float]:
        return {
            "communication": float(self.communication.mean()),
            "service": float(self.service.mean()),
            "inference": float(self.inference.mean()),
        }

    def throughput(self, makespan_s: float) -> float:
        """Requests per second over a given makespan."""
        if makespan_s <= 0:
            raise ValueError("makespan must be positive")
        return self.n_requests / makespan_s


@dataclass(frozen=True)
class DataMetrics:
    """Staging-plane accounting for one DataManager (data subsystem).

    ``bytes_moved`` is what actually crossed the fabric; ``bytes_saved`` is
    what warm caches and in-flight dedup made free; ``transfer_wait`` is the
    distribution of per-transfer wall times (latency + fair-shared
    serialisation, so link contention shows up here).
    """

    bytes_moved: float
    bytes_saved: float
    cache_hits: int
    cache_misses: int
    dedup_hits: int
    links: int
    transfer_wait: DistStats

    @property
    def staged_requests(self) -> int:
        """Directives that named actual data (hits + dedup + misses)."""
        return self.cache_hits + self.dedup_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of staged requests served without moving bytes."""
        total = self.staged_requests
        if total == 0:
            return float("nan")
        return (self.cache_hits + self.dedup_hits) / total

    @property
    def bytes_requested(self) -> float:
        return self.bytes_moved + self.bytes_saved

    def row(self) -> Dict[str, object]:
        """Flat report row (sizes in GB for readability)."""
        return {
            "moved_gb": self.bytes_moved / 1e9,
            "saved_gb": self.bytes_saved / 1e9,
            "hit_rate": self.hit_rate,
            "hits": self.cache_hits,
            "dedup": self.dedup_hits,
            "misses": self.cache_misses,
            "wait_mean_s": self.transfer_wait.mean,
            "wait_p95_s": self.transfer_wait.p95,
        }


def data_metrics(manager) -> DataMetrics:
    """Extract :class:`DataMetrics` from a ``DataManager``."""
    return DataMetrics(
        bytes_moved=manager.bytes_transferred,
        bytes_saved=manager.bytes_saved,
        cache_hits=manager.cache_hits,
        cache_misses=manager.cache_misses,
        dedup_hits=manager.dedup_hits,
        links=manager.links_total,
        transfer_wait=dist_stats(manager.transfer_wait_s),
    )


@dataclass(frozen=True)
class FailureMetrics:
    """Resilience accounting: what broke, when it was seen, what it cost.

    ``goodput_core_s`` is useful work committed by DONE tasks;
    ``wasted_core_s`` is compute consumed by attempts that then failed
    (including attempts later retried to success).  ``detection_latency``
    measures fault to heartbeat-lease expiry -- the real observation delay
    of the control plane -- and ``recovery_latency`` measures failure to
    re-dispatch (detection + backoff + capacity wait).
    """

    n_tasks: int
    n_done: int
    n_failed: int              # terminally failed (after retries)
    n_canceled: int
    failures_total: int        # attempt failures, incl. recovered ones
    failure_reasons: Dict[str, int]   # "origin:ExceptionType" -> count
    retries_granted: int
    tasks_retried: int
    faults_injected: int
    resubmissions: int
    goodput_core_s: float
    wasted_core_s: float
    detection_latency: DistStats
    recovery_latency: DistStats

    @property
    def goodput_fraction(self) -> float:
        """Useful share of all consumed core-seconds."""
        total = self.goodput_core_s + self.wasted_core_s
        if total <= 0:
            return float("nan")
        return self.goodput_core_s / total

    def row(self) -> Dict[str, object]:
        """Flat report row (core-hours for readability)."""
        return {
            "done": f"{self.n_done}/{self.n_tasks}",
            "attempt_failures": self.failures_total,
            "retries": self.retries_granted,
            "goodput_core_h": self.goodput_core_s / 3600.0,
            "wasted_core_h": self.wasted_core_s / 3600.0,
            "goodput_frac": self.goodput_fraction,
            "detect_p50_s": self.detection_latency.p50,
            "recover_p50_s": self.recovery_latency.p50,
        }


def failure_metrics(session, tasks) -> FailureMetrics:
    """Extract :class:`FailureMetrics` from a session and its tasks.

    Works with or without the resilience subsystem: without it, detection
    and recovery distributions are empty and only the per-task failure
    reasons/goodput accounting remain.
    """
    from ..resilience.failures import failure_counts

    tasks = list(tasks)
    states = [t.state for t in tasks]
    goodput = sum((t.runtime_s or 0.0) * t.n_cores for t in tasks
                  if t.state == "DONE")
    wasted = sum(reason.wasted_core_s for t in tasks
                 for reason in t.failures)
    res = session.resilience
    detections: List[float] = []
    recoveries: List[float] = []
    retries = 0
    faults = 0
    resubs = 0
    if res is not None:
        detections = res.detection_latencies()
        recoveries = res.recovery.recovery_latencies()
        retries = res.recovery.retries_granted
        resubs = len(res.recovery.resubmissions)
        if res.injector is not None:
            faults = len([r for r in res.injector.records
                          if not r.kind.endswith("_repair")])
    return FailureMetrics(
        n_tasks=len(tasks),
        n_done=states.count("DONE"),
        n_failed=sum(1 for t in tasks
                     if t.state == "FAILED" and t.completed.triggered),
        n_canceled=states.count("CANCELED"),
        failures_total=sum(len(t.failures) for t in tasks),
        failure_reasons=failure_counts(tasks),
        retries_granted=retries,
        tasks_retried=sum(1 for t in tasks if t.attempts > 1),
        faults_injected=faults,
        resubmissions=resubs,
        goodput_core_s=goodput,
        wasted_core_s=wasted,
        detection_latency=dist_stats(detections),
        recovery_latency=dist_stats(recoveries),
    )


def response_metrics(results: Iterable[InferenceResult]) -> ResponseMetrics:
    """Build RT metrics from client-side inference results.

    Only successful replies contribute: a request that exhausted its busy
    retries carries near-zero service/inference components and would drag
    the RT mean down (and inflate throughput) exactly when the system is
    overloaded.  Failures are counted by the experiment drivers instead
    (:attr:`Exp23Result.failed_total`).
    """
    results = [r for r in results if r.ok]
    return ResponseMetrics(
        response_time=np.array([r.response_time for r in results]),
        communication=np.array([r.communication for r in results]),
        service=np.array([r.service_time for r in results]),
        inference=np.array([r.inference_time for r in results]),
        queue=np.array([r.queue_time for r in results]),
    )
