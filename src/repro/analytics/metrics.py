"""Metric extraction: the paper's BT / RT / IT decompositions.

§IV defines three metrics:

* **Bootstrap Time (BT)** -- time for services to become available, split
  into ``launch`` (placing the service executable), ``init`` (loading and
  initialising the model) and ``publish`` (communicating the endpoint);
* **Response Time (RT)** -- time for a service to acknowledge a request,
  split into ``communication``, ``service`` (queue/parse/serialise) and
  ``inference``;
* **Inference Time (IT)** -- the inference component alone.

BT components come from profiler events recorded by the ServiceManager;
RT/IT come from the per-request :class:`~repro.core.client.InferenceResult`
records.  Everything is vectorised with numpy (means, stds, percentiles,
tails), since the paper reports distributions "across multiple task,
service, and model instances".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.client import InferenceResult
from ..pilot.profiler import Profiler

__all__ = [
    "DistStats",
    "dist_stats",
    "BootstrapMetrics",
    "bootstrap_metrics",
    "ResponseMetrics",
    "response_metrics",
    "DataMetrics",
    "data_metrics",
    "FailureMetrics",
    "failure_metrics",
    "CampaignMetrics",
    "campaign_metrics",
]


@dataclass(frozen=True)
class DistStats:
    """Summary statistics of one duration distribution (seconds)."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float
    min: float
    max: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.4g}s std={self.std:.3g} "
                f"p50={self.p50:.4g} p95={self.p95:.4g}")


def dist_stats(values: Sequence[float]) -> DistStats:
    """Compute :class:`DistStats` (empty input yields NaNs, n=0).

    The mean and percentiles are clamped into ``[min, max]``: floating-point
    summation can push ``arr.mean()`` (and interpolated percentiles) a few
    ULPs outside the data range, which breaks the ``min <= mean <= max``
    invariant downstream consumers rely on.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return DistStats(0, nan, nan, nan, nan, nan, nan)
    lo, hi = float(arr.min()), float(arr.max())

    def clamp(x: float) -> float:
        return min(max(float(x), lo), hi)

    return DistStats(
        n=int(arr.size),
        mean=clamp(arr.mean()),
        std=float(arr.std()),
        p50=clamp(np.percentile(arr, 50)),
        p95=clamp(np.percentile(arr, 95)),
        min=lo,
        max=hi,
    )


@dataclass
class BootstrapMetrics:
    """Per-service BT component arrays plus their stats (Experiment 1)."""

    uids: List[str]
    launch: np.ndarray
    init: np.ndarray
    publish: np.ndarray
    total: np.ndarray

    @property
    def launch_stats(self) -> DistStats:
        return dist_stats(self.launch)

    @property
    def init_stats(self) -> DistStats:
        return dist_stats(self.init)

    @property
    def publish_stats(self) -> DistStats:
        return dist_stats(self.publish)

    @property
    def total_stats(self) -> DistStats:
        return dist_stats(self.total)

    def component_means(self) -> Dict[str, float]:
        return {
            "launch": float(self.launch.mean()) if self.launch.size else float("nan"),
            "init": float(self.init.mean()) if self.init.size else float("nan"),
            "publish": float(self.publish.mean()) if self.publish.size else float("nan"),
        }


def bootstrap_metrics(profiler: Profiler,
                      uids: Iterable[str]) -> BootstrapMetrics:
    """Extract BT components for the given service uids."""
    uids = list(uids)
    launch = profiler.durations(uids, "launch_start", "launch_stop")
    init = profiler.durations(uids, "init_start", "init_stop")
    publish = profiler.durations(uids, "publish_start", "publish_stop")
    total = profiler.durations(uids, "bootstrap_start", "bootstrap_stop")
    return BootstrapMetrics(uids=uids, launch=launch, init=init,
                            publish=publish, total=total)


@dataclass
class ResponseMetrics:
    """Per-request RT component arrays plus stats (Experiments 2-3)."""

    response_time: np.ndarray
    communication: np.ndarray
    service: np.ndarray
    inference: np.ndarray
    queue: np.ndarray
    n_requests: int = field(init=False)

    def __post_init__(self) -> None:
        self.n_requests = int(self.response_time.size)

    @property
    def rt_stats(self) -> DistStats:
        return dist_stats(self.response_time)

    @property
    def communication_stats(self) -> DistStats:
        return dist_stats(self.communication)

    @property
    def service_stats(self) -> DistStats:
        return dist_stats(self.service)

    @property
    def inference_stats(self) -> DistStats:
        return dist_stats(self.inference)

    @property
    def queue_stats(self) -> DistStats:
        return dist_stats(self.queue)

    def dominant_component(self) -> str:
        """Which component contributes most to mean RT."""
        means = {
            "communication": float(self.communication.mean()),
            "service": float(self.service.mean()),
            "inference": float(self.inference.mean()),
        }
        return max(means, key=means.get)

    def component_means(self) -> Dict[str, float]:
        return {
            "communication": float(self.communication.mean()),
            "service": float(self.service.mean()),
            "inference": float(self.inference.mean()),
        }

    def throughput(self, makespan_s: float) -> float:
        """Requests per second over a given makespan."""
        if makespan_s <= 0:
            raise ValueError("makespan must be positive")
        return self.n_requests / makespan_s


@dataclass(frozen=True)
class DataMetrics:
    """Staging-plane accounting for one DataManager (data subsystem).

    ``bytes_moved`` is what actually crossed the fabric; ``bytes_saved`` is
    what warm caches and in-flight dedup made free; ``transfer_wait`` is the
    distribution of per-transfer wall times (latency + fair-shared
    serialisation, so link contention shows up here).
    """

    bytes_moved: float
    bytes_saved: float
    cache_hits: int
    cache_misses: int
    dedup_hits: int
    links: int
    transfer_wait: DistStats

    @property
    def staged_requests(self) -> int:
        """Directives that named actual data (hits + dedup + misses)."""
        return self.cache_hits + self.dedup_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of staged requests served without moving bytes."""
        total = self.staged_requests
        if total == 0:
            return float("nan")
        return (self.cache_hits + self.dedup_hits) / total

    @property
    def bytes_requested(self) -> float:
        return self.bytes_moved + self.bytes_saved

    def row(self) -> Dict[str, object]:
        """Flat report row (sizes in GB for readability)."""
        return {
            "moved_gb": self.bytes_moved / 1e9,
            "saved_gb": self.bytes_saved / 1e9,
            "hit_rate": self.hit_rate,
            "hits": self.cache_hits,
            "dedup": self.dedup_hits,
            "misses": self.cache_misses,
            "wait_mean_s": self.transfer_wait.mean,
            "wait_p95_s": self.transfer_wait.p95,
        }


def data_metrics(manager) -> DataMetrics:
    """Extract :class:`DataMetrics` from a ``DataManager``."""
    return DataMetrics(
        bytes_moved=manager.bytes_transferred,
        bytes_saved=manager.bytes_saved,
        cache_hits=manager.cache_hits,
        cache_misses=manager.cache_misses,
        dedup_hits=manager.dedup_hits,
        links=manager.links_total,
        transfer_wait=dist_stats(manager.transfer_wait_s),
    )


@dataclass(frozen=True)
class FailureMetrics:
    """Resilience accounting: what broke, when it was seen, what it cost.

    ``goodput_core_s`` is useful work committed by DONE tasks;
    ``wasted_core_s`` is compute consumed by attempts that then failed
    (including attempts later retried to success).  ``detection_latency``
    measures fault to heartbeat-lease expiry -- the real observation delay
    of the control plane -- and ``recovery_latency`` measures failure to
    re-dispatch (detection + backoff + capacity wait).
    """

    n_tasks: int
    n_done: int
    n_failed: int              # terminally failed (after retries)
    n_canceled: int
    failures_total: int        # attempt failures, incl. recovered ones
    failure_reasons: Dict[str, int]   # "origin:ExceptionType" -> count
    retries_granted: int
    tasks_retried: int
    faults_injected: int
    resubmissions: int
    goodput_core_s: float
    wasted_core_s: float
    detection_latency: DistStats
    recovery_latency: DistStats

    @property
    def goodput_fraction(self) -> float:
        """Useful share of all consumed core-seconds."""
        total = self.goodput_core_s + self.wasted_core_s
        if total <= 0:
            return float("nan")
        return self.goodput_core_s / total

    def row(self) -> Dict[str, object]:
        """Flat report row (core-hours for readability)."""
        return {
            "done": f"{self.n_done}/{self.n_tasks}",
            "attempt_failures": self.failures_total,
            "retries": self.retries_granted,
            "goodput_core_h": self.goodput_core_s / 3600.0,
            "wasted_core_h": self.wasted_core_s / 3600.0,
            "goodput_frac": self.goodput_fraction,
            "detect_p50_s": self.detection_latency.p50,
            "recover_p50_s": self.recovery_latency.p50,
        }


def failure_metrics(session, tasks) -> FailureMetrics:
    """Extract :class:`FailureMetrics` from a session and its tasks.

    Works with or without the resilience subsystem: without it, detection
    and recovery distributions are empty and only the per-task failure
    reasons/goodput accounting remain.
    """
    from ..resilience.failures import failure_counts

    tasks = list(tasks)
    states = [t.state for t in tasks]
    goodput = sum((t.runtime_s or 0.0) * t.n_cores for t in tasks
                  if t.state == "DONE")
    wasted = sum(reason.wasted_core_s for t in tasks
                 for reason in t.failures)
    res = session.resilience
    detections: List[float] = []
    recoveries: List[float] = []
    retries = 0
    faults = 0
    resubs = 0
    if res is not None:
        detections = res.detection_latencies()
        recoveries = res.recovery.recovery_latencies()
        retries = res.recovery.retries_granted
        resubs = len(res.recovery.resubmissions)
        if res.injector is not None:
            faults = len([r for r in res.injector.records
                          if not r.kind.endswith("_repair")])
    return FailureMetrics(
        n_tasks=len(tasks),
        n_done=states.count("DONE"),
        n_failed=sum(1 for t in tasks
                     if t.state == "FAILED" and t.completed.triggered),
        n_canceled=states.count("CANCELED"),
        failures_total=sum(len(t.failures) for t in tasks),
        failure_reasons=failure_counts(tasks),
        retries_granted=retries,
        tasks_retried=sum(1 for t in tasks if t.attempts > 1),
        faults_injected=faults,
        resubmissions=resubs,
        goodput_core_s=goodput,
        wasted_core_s=wasted,
        detection_latency=dist_stats(detections),
        recovery_latency=dist_stats(recoveries),
    )


@dataclass(frozen=True)
class CampaignMetrics:
    """Overlap/idle accounting for one campaign's execution window.

    The streaming engine's whole point is filling the allocation that
    stage barriers idle, so the headline numbers are ``idle_fraction``
    (allocation core-seconds *not* spent executing over the campaign
    span) and ``overlap_fraction`` (of the time at least one node's task
    was executing, the share during which tasks of **two or more
    distinct nodes** executed concurrently -- exactly the concurrency a
    stage barrier forbids between consecutive stages).
    """

    makespan_s: float
    n_tasks: int
    n_done: int
    n_nodes: int
    busy_core_s: float
    alloc_core_s: float
    idle_fraction: float
    overlap_fraction: float
    peak_concurrency: int     # max simultaneously executing tasks
    peak_busy_cores: int      # max simultaneously busy cores

    def row(self) -> Dict[str, object]:
        """Flat report row (core-hours for readability)."""
        return {
            "makespan_s": self.makespan_s,
            "tasks": f"{self.n_done}/{self.n_tasks}",
            "busy_core_h": self.busy_core_s / 3600.0,
            "idle_frac": self.idle_fraction,
            "overlap_frac": self.overlap_fraction,
            "peak_tasks": self.peak_concurrency,
        }


def campaign_metrics(session, groups: Dict[str, Iterable],
                     total_cores: int,
                     span_s: Optional[float] = None) -> CampaignMetrics:
    """Extract :class:`CampaignMetrics` from a finished campaign.

    *groups* maps node keys to their tasks -- a
    :class:`~repro.workflows.campaign.CampaignRunner`'s ``node_tasks``
    fits directly.  Execution intervals come from the profiler's
    ``exec_start``/``exec_stop`` first-timestamps, so the ``durations``
    tier suffices; tasks that never reached execution are skipped.
    *span_s* overrides the makespan (default: last ``exec_stop`` minus
    first ``exec_start``); *total_cores* sizes the allocation for the
    idle accounting.
    """
    if total_cores < 1:
        raise ValueError("total_cores must be >= 1")
    profiler = session.profiler
    intervals = []   # (start, stop, group, cores)
    n_tasks = 0
    n_done = 0
    for group, tasks in groups.items():
        for task in tasks:
            n_tasks += 1
            n_done += task.state == "DONE"
            t0 = profiler.timestamp(task.uid, "exec_start")
            t1 = profiler.timestamp(task.uid, "exec_stop")
            if t0 is None or t1 is None:
                continue
            intervals.append((t0, t1, group, task.n_cores))
    if not intervals:
        nan = float("nan")
        return CampaignMetrics(
            makespan_s=span_s if span_s is not None else 0.0,
            n_tasks=n_tasks, n_done=n_done, n_nodes=len(groups),
            busy_core_s=0.0, alloc_core_s=0.0, idle_fraction=nan,
            overlap_fraction=nan, peak_concurrency=0, peak_busy_cores=0)

    makespan = span_s if span_s is not None else (
        max(t1 for _, t1, _, _ in intervals)
        - min(t0 for t0, _, _, _ in intervals))
    busy_core_s = sum((t1 - t0) * cores for t0, t1, _, cores in intervals)
    alloc_core_s = total_cores * makespan

    # Sweep the interval boundaries, tracking active tasks per group.
    boundaries = []  # (time, order, group, d_tasks, d_cores)
    for t0, t1, group, cores in intervals:
        boundaries.append((t0, 1, group, 1, cores))
        boundaries.append((t1, 0, group, -1, -cores))
    boundaries.sort(key=lambda b: (b[0], b[1]))  # stops before starts
    active: Dict[str, int] = {}
    active_groups = 0    # groups with at least one executing task,
    busy_tasks = 0       # maintained incrementally on 0<->1 crossings so
    busy_cores = 0       # the sweep stays O(n log n) for per-item graphs
    peak_concurrency = 0
    peak_busy_cores = 0
    active_span = 0.0
    overlap_span = 0.0
    prev_t = boundaries[0][0]
    for time, _, group, d_tasks, d_cores in boundaries:
        dt = time - prev_t
        if dt > 0:
            if busy_tasks > 0:
                active_span += dt
                if active_groups >= 2:
                    overlap_span += dt
            prev_t = time
        before = active.get(group, 0)
        active[group] = before + d_tasks
        if before == 0 and d_tasks > 0:
            active_groups += 1
        elif before + d_tasks == 0 and before > 0:
            active_groups -= 1
        busy_tasks += d_tasks
        busy_cores += d_cores
        peak_concurrency = max(peak_concurrency, busy_tasks)
        peak_busy_cores = max(peak_busy_cores, busy_cores)

    return CampaignMetrics(
        makespan_s=float(makespan),
        n_tasks=n_tasks,
        n_done=n_done,
        n_nodes=len(groups),
        busy_core_s=float(busy_core_s),
        alloc_core_s=float(alloc_core_s),
        idle_fraction=(1.0 - busy_core_s / alloc_core_s
                       if alloc_core_s > 0 else float("nan")),
        overlap_fraction=(overlap_span / active_span
                          if active_span > 0 else float("nan")),
        peak_concurrency=peak_concurrency,
        peak_busy_cores=peak_busy_cores,
    )


def response_metrics(results: Iterable[InferenceResult]) -> ResponseMetrics:
    """Build RT metrics from client-side inference results.

    Only successful replies contribute: a request that exhausted its busy
    retries carries near-zero service/inference components and would drag
    the RT mean down (and inflate throughput) exactly when the system is
    overloaded.  Failures are counted by the experiment drivers instead
    (:attr:`Exp23Result.failed_total`).
    """
    results = [r for r in results if r.ok]
    return ResponseMetrics(
        response_time=np.array([r.response_time for r in results]),
        communication=np.array([r.communication for r in results]),
        service=np.array([r.service_time for r in results]),
        inference=np.array([r.inference_time for r in results]),
        queue=np.array([r.queue_time for r in results]),
    )
