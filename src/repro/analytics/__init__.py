"""Analytics: metric extraction, experiment drivers and report rendering."""

from .metrics import (
    BootstrapMetrics,
    DataMetrics,
    DistStats,
    ResponseMetrics,
    bootstrap_metrics,
    data_metrics,
    dist_stats,
    response_metrics,
)
from .experiments import (
    EXP1_INSTANCE_COUNTS,
    REQUESTS_PER_CLIENT,
    STRONG_SCALING_GRID,
    WEAK_SCALING_GRID,
    Exp1Result,
    Exp23Result,
    run_experiment1,
    run_experiment2,
    run_experiment3,
    run_autoscaled_workload,
    run_service_workload,
)
from .report import ReportBuilder, format_seconds, render_table

__all__ = [
    "BootstrapMetrics",
    "DataMetrics",
    "DistStats",
    "ResponseMetrics",
    "bootstrap_metrics",
    "data_metrics",
    "dist_stats",
    "response_metrics",
    "EXP1_INSTANCE_COUNTS",
    "REQUESTS_PER_CLIENT",
    "STRONG_SCALING_GRID",
    "WEAK_SCALING_GRID",
    "Exp1Result",
    "Exp23Result",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
    "run_autoscaled_workload",
    "run_service_workload",
    "ReportBuilder",
    "format_seconds",
    "render_table",
]
