"""ML serving substrate: model backends and serving hosts.

Backends define *what* a model costs (load, per-request inference) and what
it returns (really generated text); hosts define *how* requests are handled
(single-threaded Ollama-like vs. batching vLLM-like).
"""

from .backend import (
    BACKENDS,
    InferenceResultPayload,
    LlamaModel,
    ModelBackend,
    NoopModel,
    create_backend,
    register_backend,
)
from .generator import MarkovGenerator, default_generator, tokenize
from .hosts import HOSTS, OllamaHost, ServingHost, VllmHost, create_host

__all__ = [
    "BACKENDS",
    "InferenceResultPayload",
    "LlamaModel",
    "ModelBackend",
    "NoopModel",
    "create_backend",
    "register_backend",
    "MarkovGenerator",
    "default_generator",
    "tokenize",
    "HOSTS",
    "OllamaHost",
    "ServingHost",
    "VllmHost",
    "create_host",
]
