"""Serving hosts: the software that holds a model and handles requests.

The paper uses Ollama "avoiding the complexities of alternatives that would
enable efficient parallelization on HPC (e.g., vLLM, TensorRT, or
DeepSpeed)" (§III), and notes that "services are single-threaded, and, as
such, they only handle one request at a time, queuing further incoming
requests" (§IV).  :class:`OllamaHost` reproduces exactly that.  The
future-work backend, :class:`VllmHost`, adds continuous batching and is used
by the serving ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .backend import InferenceResultPayload, ModelBackend, create_backend

__all__ = ["ServingHost", "OllamaHost", "VllmHost", "create_host", "HOSTS"]


class ServingHost:
    """Base host: request handling cost model around a :class:`ModelBackend`."""

    name = "base"
    #: concurrent worker dispatches the host can run (1 = serial queueing)
    max_concurrency: int = 1
    #: queued requests one dispatch may coalesce (1 = no batching)
    max_batch_size: int = 1

    #: request parse/deserialise: fixed + per-byte cost.  ZeroMQ framing and
    #: msgpack/JSON decode of sub-KB requests is single-digit µs; the paper
    #: measures the service component (queue+parse+serialize) *below* the
    #: 63 µs local network latency even under 16-client load (Fig. 4).
    PARSE_BASE_S = 3e-6
    PARSE_PER_BYTE_S = 1.0 / 1e9
    #: reply serialise
    SERIALIZE_BASE_S = 2e-6
    SERIALIZE_PER_BYTE_S = 1.0 / 1.2e9

    def __init__(self, backend: ModelBackend,
                 max_concurrency: Optional[int] = None,
                 max_batch_size: Optional[int] = None) -> None:
        self.backend = backend
        if max_concurrency is not None:
            if max_concurrency < 1:
                raise ValueError("max_concurrency must be >= 1")
            self.max_concurrency = max_concurrency
        if max_batch_size is not None:
            if max_batch_size < 1:
                raise ValueError("max_batch_size must be >= 1")
            self.max_batch_size = max_batch_size

    # -- cost components ---------------------------------------------------------
    def parse_time(self, nbytes: int, rng) -> float:
        jitter = float(max(0.2, rng.normal(1.0, 0.1)))
        return (self.PARSE_BASE_S + nbytes * self.PARSE_PER_BYTE_S) * jitter

    def serialize_time(self, nbytes: int, rng) -> float:
        jitter = float(max(0.2, rng.normal(1.0, 0.1)))
        return (self.SERIALIZE_BASE_S
                + nbytes * self.SERIALIZE_PER_BYTE_S) * jitter

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        return self.backend.load_time(rng, concurrent_loads,
                                      fs_bandwidth_gbps, fs_aggregate_gbps)

    def infer(self, prompt: str, rng,
              params: Optional[Dict[str, Any]] = None, n_active: int = 1,
              ) -> Tuple[InferenceResultPayload, float]:
        """One inference under *n_active* concurrently-running requests."""
        return self.backend.infer(prompt, rng, params)

    def infer_batch(self, prompts: Sequence[str], rng,
                    params_list: Optional[Sequence[Optional[Dict[str, Any]]]]
                    = None, n_active: int = 1,
                    ) -> Tuple[List[InferenceResultPayload], float]:
        """One coalesced dispatch under *n_active* concurrent dispatches."""
        return self.backend.infer_batch(prompts, rng, params_list)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} model={self.backend.name}>"


class OllamaHost(ServingHost):
    """Single-threaded host: one request at a time, FIFO queueing (§IV)."""

    name = "ollama"
    max_concurrency = 1
    max_batch_size = 1


class VllmHost(ServingHost):
    """Continuous-batching host (the paper's future-work serving tier).

    Running *b* requests concurrently slows each one down only mildly
    (``1 + batch_penalty*(b-1)``), so aggregate throughput grows nearly
    linearly until ``max_concurrency`` -- the behaviour that motivates
    replacing Ollama with vLLM/TensorRT/DeepSpeed (§IV-E).
    """

    name = "vllm"
    max_concurrency = 8
    max_batch_size = 8

    def __init__(self, backend: ModelBackend,
                 max_concurrency: Optional[int] = None,
                 max_batch_size: Optional[int] = None,
                 batch_penalty: float = 0.12) -> None:
        super().__init__(backend, max_concurrency, max_batch_size)
        if batch_penalty < 0:
            raise ValueError("batch_penalty must be >= 0")
        self.batch_penalty = batch_penalty

    def infer(self, prompt: str, rng, params=None, n_active: int = 1):
        payload, duration = self.backend.infer(prompt, rng, params)
        slowdown = 1.0 + self.batch_penalty * max(0, n_active - 1)
        return payload, duration * slowdown

    def infer_batch(self, prompts, rng, params_list=None, n_active: int = 1):
        payloads, span = self.backend.infer_batch(prompts, rng, params_list)
        # Other concurrently-running dispatches contend for the same GPU.
        slowdown = 1.0 + self.batch_penalty * max(0, n_active - 1)
        return payloads, span * slowdown


HOSTS = {
    "ollama": OllamaHost,
    "vllm": VllmHost,
}


def create_host(backend_name: str, model_name: str,
                max_concurrency: Optional[int] = None,
                max_batch_size: Optional[int] = None) -> ServingHost:
    """Build a host of kind *backend_name* serving *model_name*."""
    try:
        host_cls = HOSTS[backend_name]
    except KeyError:
        raise KeyError(
            f"unknown serving backend {backend_name!r}; "
            f"known: {sorted(HOSTS)}") from None
    return host_cls(create_backend(model_name),
                    max_concurrency=max_concurrency,
                    max_batch_size=max_batch_size)
