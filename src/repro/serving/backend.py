"""Model backends: what a service instance loads and runs.

A :class:`ModelBackend` bundles a *cost model* (load time, per-request
inference time) with an *inference function* (what payload comes back).
Two backends reproduce the paper's experiments:

* :class:`NoopModel` -- Experiment 2's NOOP: "a NOOP model, which will
  immediately reply without performing any actual inference" (§IV).
* :class:`LlamaModel` -- Experiments 1 & 3's ``llama-8b``: load time sized by
  weight volume over shared-filesystem bandwidth (dominating bootstrap,
  Fig. 3) and inference time from a prefill+decode token model (dominating
  response time, Fig. 6).  Text is really generated (Markov sampler).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from .generator import MarkovGenerator, default_generator, tokenize

__all__ = [
    "InferenceResultPayload",
    "ModelBackend",
    "NoopModel",
    "LlamaModel",
    "create_backend",
    "register_backend",
    "BACKENDS",
]


@dataclass
class InferenceResultPayload:
    """What a backend returns for one request."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str
    extra: Dict[str, Any] = field(default_factory=dict)


class ModelBackend:
    """Base class for servable models."""

    #: canonical model name (e.g. "llama-8b")
    name: str = "base"

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        """Seconds to load+initialise under *concurrent_loads* contention.

        ``fs_bandwidth_gbps`` is the per-client read cap;
        ``fs_aggregate_gbps`` the shared pool concurrent loaders divide.
        """
        raise NotImplementedError

    def infer(self, prompt: str, rng,
              params: Optional[Dict[str, Any]] = None,
              ) -> Tuple[InferenceResultPayload, float]:
        """Run one inference: returns (payload, modeled duration seconds)."""
        raise NotImplementedError

    #: GPU memory the model occupies when resident (GB).
    gpu_mem_gb: float = 0.0


class NoopModel(ModelBackend):
    """Immediate-reply model for measuring pure service overhead (Exp 2)."""

    name = "noop"
    gpu_mem_gb = 0.0

    #: tiny fixed handling cost: a function call and a dict build
    NOOP_COST_S = 2e-6

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        # Starting the (empty) service runtime: python interpreter + imports.
        return float(max(0.05, rng.normal(0.5, 0.05)))

    def infer(self, prompt: str, rng, params=None):
        payload = InferenceResultPayload(
            text="", prompt_tokens=len(tokenize(prompt)),
            completion_tokens=0, model=self.name)
        return payload, self.NOOP_COST_S


class LlamaModel(ModelBackend):
    """Synthetic Llama-class generative model with calibrated timing.

    Cost model (defaults sized for 8B params served on one A100/MI250X-class
    GPU by a simple host like Ollama):

    * weights: ``2 bytes * params`` (fp16) read from the shared filesystem at
      ``fs_bandwidth_gbps`` split across concurrent loaders, plus a fixed
      runtime-initialisation term -- this is the Fig. 3 ``init`` component
      (~40 s for 8B, mildly growing with contention);
    * inference: ``prompt_tokens / prefill_tps + completion_tokens /
      decode_tps`` with gaussian jitter -- seconds per request, dominating
      Fig. 6.
    """

    def __init__(self, params_b: float = 8.0,
                 prefill_tps: float = 3000.0,
                 decode_tps: float = 35.0,
                 init_const_s: float = 8.0,
                 generator: Optional[MarkovGenerator] = None) -> None:
        if params_b <= 0:
            raise ValueError("params_b must be positive")
        self.params_b = params_b
        self.prefill_tps = prefill_tps
        self.decode_tps = decode_tps
        self.init_const_s = init_const_s
        self.name = f"llama-{int(params_b)}b"
        self.gpu_mem_gb = params_b * 2.0  # fp16 weights
        self._generator = generator or default_generator()

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        if concurrent_loads < 1:
            raise ValueError("concurrent_loads must be >= 1")
        weights_gb = self.gpu_mem_gb
        # Each loader reads at its per-client cap until the shared aggregate
        # pool saturates; beyond that point bandwidth divides evenly.
        effective_gbps = min(fs_bandwidth_gbps,
                             fs_aggregate_gbps / concurrent_loads)
        read_s = weights_gb / max(effective_gbps, 1e-3)
        init_s = max(1.0, rng.normal(self.init_const_s, self.init_const_s * 0.1))
        return float(read_s + init_s)

    def infer(self, prompt: str, rng, params=None):
        params = params or {}
        max_tokens = int(params.get("max_tokens", 256))
        if max_tokens < 0:
            raise ValueError("max_tokens must be >= 0")
        prompt_tokens = len(tokenize(prompt))
        # Sample the actual completion length: requests rarely use the cap.
        completion_tokens = int(min(
            max_tokens, max(1, rng.normal(0.75 * max_tokens,
                                          0.15 * max_tokens))))
        text = self._generator.generate(prompt, completion_tokens, rng)
        duration = (prompt_tokens / self.prefill_tps
                    + completion_tokens / self.decode_tps)
        duration *= float(max(0.5, rng.normal(1.0, 0.05)))
        payload = InferenceResultPayload(
            text=text, prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens, model=self.name)
        return payload, float(duration)


#: model-name -> factory
BACKENDS: Dict[str, Callable[[], ModelBackend]] = {
    "noop": NoopModel,
    "llama-8b": lambda: LlamaModel(params_b=8.0),
    "llama-70b": lambda: LlamaModel(params_b=70.0, decode_tps=8.0),
}

_LLAMA_RE = re.compile(r"^llama-(\d+(?:\.\d+)?)b$")


def register_backend(name: str, factory: Callable[[], ModelBackend],
                     overwrite: bool = False) -> None:
    """Register a custom model backend factory."""
    if name in BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    BACKENDS[name] = factory


def create_backend(model_name: str) -> ModelBackend:
    """Instantiate a backend by model name (``llama-<N>b`` parsed generically)."""
    factory = BACKENDS.get(model_name)
    if factory is not None:
        return factory()
    match = _LLAMA_RE.match(model_name)
    if match:
        return LlamaModel(params_b=float(match.group(1)))
    raise KeyError(
        f"unknown model {model_name!r}; known: {sorted(BACKENDS)} "
        f"or 'llama-<N>b'")
