"""Model backends: what a service instance loads and runs.

A :class:`ModelBackend` bundles a *cost model* (load time, per-request
inference time) with an *inference function* (what payload comes back).
Two backends reproduce the paper's experiments:

* :class:`NoopModel` -- Experiment 2's NOOP: "a NOOP model, which will
  immediately reply without performing any actual inference" (§IV).
* :class:`LlamaModel` -- Experiments 1 & 3's ``llama-8b``: load time sized by
  weight volume over shared-filesystem bandwidth (dominating bootstrap,
  Fig. 3) and inference time from a prefill+decode token model (dominating
  response time, Fig. 6).  Text is really generated (Markov sampler).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .generator import MarkovGenerator, default_generator, tokenize

__all__ = [
    "InferenceResultPayload",
    "ModelBackend",
    "NoopModel",
    "LlamaModel",
    "create_backend",
    "register_backend",
    "BACKENDS",
]


@dataclass
class InferenceResultPayload:
    """What a backend returns for one request."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str
    extra: Dict[str, Any] = field(default_factory=dict)


class ModelBackend:
    """Base class for servable models."""

    #: canonical model name (e.g. "llama-8b")
    name: str = "base"

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        """Seconds to load+initialise under *concurrent_loads* contention.

        ``fs_bandwidth_gbps`` is the per-client read cap;
        ``fs_aggregate_gbps`` the shared pool concurrent loaders divide.
        """
        raise NotImplementedError

    def infer(self, prompt: str, rng,
              params: Optional[Dict[str, Any]] = None,
              ) -> Tuple[InferenceResultPayload, float]:
        """Run one inference: returns (payload, modeled duration seconds)."""
        raise NotImplementedError

    def infer_batch(self, prompts: Sequence[str], rng,
                    params_list: Optional[Sequence[Optional[Dict[str, Any]]]]
                    = None,
                    ) -> Tuple[List[InferenceResultPayload], float]:
        """Run a coalesced batch: returns (payloads, busy span seconds).

        All requests of a batch complete together after the returned span
        (the continuous-batching approximation).  The base implementation
        has no batching advantage: the span is the sum of the individual
        inference durations.  Backends with real batch execution override
        this with a sub-linear cost model.
        """
        if not prompts:
            raise ValueError("infer_batch needs at least one prompt")
        params_list = self._norm_params(prompts, params_list)
        payloads: List[InferenceResultPayload] = []
        span = 0.0
        for prompt, params in zip(prompts, params_list):
            payload, duration = self.infer(prompt, rng, params)
            payloads.append(payload)
            span += duration
        return payloads, span

    @staticmethod
    def _norm_params(prompts: Sequence[str],
                     params_list: Optional[Sequence[Optional[Dict[str, Any]]]]
                     ) -> Sequence[Optional[Dict[str, Any]]]:
        if params_list is None:
            return [None] * len(prompts)
        if len(params_list) != len(prompts):
            raise ValueError("params_list must match prompts in length")
        return params_list

    #: GPU memory the model occupies when resident (GB).
    gpu_mem_gb: float = 0.0


class NoopModel(ModelBackend):
    """Immediate-reply model for measuring pure service overhead (Exp 2)."""

    name = "noop"
    gpu_mem_gb = 0.0

    #: tiny fixed handling cost: a function call and a dict build
    NOOP_COST_S = 2e-6
    #: marginal cost of each additional request in a batch, as a fraction of
    #: NOOP_COST_S -- handling N no-ops together amortises the dispatch
    BATCH_MARGINAL_FRAC = 0.1

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        # Starting the (empty) service runtime: python interpreter + imports.
        return float(max(0.05, rng.normal(0.5, 0.05)))

    def infer(self, prompt: str, rng, params=None):
        payload = InferenceResultPayload(
            text="", prompt_tokens=len(tokenize(prompt)),
            completion_tokens=0, model=self.name)
        return payload, self.NOOP_COST_S

    def infer_batch(self, prompts, rng, params_list=None):
        if not prompts:
            raise ValueError("infer_batch needs at least one prompt")
        self._norm_params(prompts, params_list)
        payloads = [InferenceResultPayload(
            text="", prompt_tokens=len(tokenize(p)),
            completion_tokens=0, model=self.name) for p in prompts]
        span = self.NOOP_COST_S * (
            1.0 + self.BATCH_MARGINAL_FRAC * (len(prompts) - 1))
        return payloads, span


class LlamaModel(ModelBackend):
    """Synthetic Llama-class generative model with calibrated timing.

    Cost model (defaults sized for 8B params served on one A100/MI250X-class
    GPU by a simple host like Ollama):

    * weights: ``2 bytes * params`` (fp16) read from the shared filesystem at
      ``fs_bandwidth_gbps`` split across concurrent loaders, plus a fixed
      runtime-initialisation term -- this is the Fig. 3 ``init`` component
      (~40 s for 8B, mildly growing with contention);
    * inference: ``prompt_tokens / prefill_tps + completion_tokens /
      decode_tps`` with gaussian jitter -- seconds per request, dominating
      Fig. 6;
    * batched inference: prefill work is compute-bound and adds up linearly
      across the batch, while decode steps are memory-bandwidth-bound and
      run all sequences per step -- a batch of *b* decodes in
      ``max(completion_tokens) / decode_tps`` slowed only by
      ``1 + batch_decode_penalty * (b - 1)``.  Aggregate throughput thus
      grows sub-linearly in cost and near-linearly in requests, the
      continuous-batching behaviour of vLLM-class hosts.
    """

    def __init__(self, params_b: float = 8.0,
                 prefill_tps: float = 3000.0,
                 decode_tps: float = 35.0,
                 init_const_s: float = 8.0,
                 batch_decode_penalty: float = 0.06,
                 generator: Optional[MarkovGenerator] = None) -> None:
        if params_b <= 0:
            raise ValueError("params_b must be positive")
        if batch_decode_penalty < 0:
            raise ValueError("batch_decode_penalty must be >= 0")
        self.params_b = params_b
        self.prefill_tps = prefill_tps
        self.decode_tps = decode_tps
        self.init_const_s = init_const_s
        self.batch_decode_penalty = batch_decode_penalty
        self.name = f"llama-{int(params_b)}b"
        self.gpu_mem_gb = params_b * 2.0  # fp16 weights
        self._generator = generator or default_generator()

    def load_time(self, rng, concurrent_loads: int = 1,
                  fs_bandwidth_gbps: float = 2.0,
                  fs_aggregate_gbps: float = 100.0) -> float:
        if concurrent_loads < 1:
            raise ValueError("concurrent_loads must be >= 1")
        weights_gb = self.gpu_mem_gb
        # Each loader reads at its per-client cap until the shared aggregate
        # pool saturates; beyond that point bandwidth divides evenly.
        effective_gbps = min(fs_bandwidth_gbps,
                             fs_aggregate_gbps / concurrent_loads)
        read_s = weights_gb / max(effective_gbps, 1e-3)
        init_s = max(1.0, rng.normal(self.init_const_s, self.init_const_s * 0.1))
        return float(read_s + init_s)

    def _sample_request(self, prompt: str, rng,
                        params: Optional[Dict[str, Any]],
                        ) -> InferenceResultPayload:
        """Sample one request's token counts and generated text."""
        params = params or {}
        max_tokens = int(params.get("max_tokens", 256))
        if max_tokens < 0:
            raise ValueError("max_tokens must be >= 0")
        prompt_tokens = len(tokenize(prompt))
        # Sample the actual completion length: requests rarely use the cap.
        completion_tokens = int(min(
            max_tokens, max(1, rng.normal(0.75 * max_tokens,
                                          0.15 * max_tokens))))
        text = self._generator.generate(prompt, completion_tokens, rng)
        return InferenceResultPayload(
            text=text, prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens, model=self.name)

    def infer(self, prompt: str, rng, params=None):
        payload = self._sample_request(prompt, rng, params)
        duration = (payload.prompt_tokens / self.prefill_tps
                    + payload.completion_tokens / self.decode_tps)
        duration *= float(max(0.5, rng.normal(1.0, 0.05)))
        return payload, float(duration)

    def infer_batch(self, prompts, rng, params_list=None):
        if not prompts:
            raise ValueError("infer_batch needs at least one prompt")
        params_list = self._norm_params(prompts, params_list)
        payloads = [self._sample_request(p, rng, params)
                    for p, params in zip(prompts, params_list)]
        # Prefill is compute-bound: token work adds up across the batch.
        prefill_s = sum(p.prompt_tokens for p in payloads) / self.prefill_tps
        # Decode is bandwidth-bound: each step advances every sequence, so
        # the batch decodes in the longest sequence's step count with a mild
        # per-sequence penalty (KV-cache pressure).
        batch = len(payloads)
        decode_s = (max(p.completion_tokens for p in payloads)
                    / self.decode_tps
                    * (1.0 + self.batch_decode_penalty * (batch - 1)))
        span = (prefill_s + decode_s) * float(max(0.5, rng.normal(1.0, 0.05)))
        return payloads, float(span)


#: model-name -> factory
BACKENDS: Dict[str, Callable[[], ModelBackend]] = {
    "noop": NoopModel,
    "llama-8b": lambda: LlamaModel(params_b=8.0),
    "llama-70b": lambda: LlamaModel(params_b=70.0, decode_tps=8.0),
}

_LLAMA_RE = re.compile(r"^llama-(\d+(?:\.\d+)?)b$")


def register_backend(name: str, factory: Callable[[], ModelBackend],
                     overwrite: bool = False) -> None:
    """Register a custom model backend factory."""
    if name in BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    BACKENDS[name] = factory


def create_backend(model_name: str) -> ModelBackend:
    """Instantiate a backend by model name (``llama-<N>b`` parsed generically)."""
    factory = BACKENDS.get(model_name)
    if factory is not None:
        return factory()
    match = _LLAMA_RE.match(model_name)
    if match:
        return LlamaModel(params_b=float(match.group(1)))
    raise KeyError(
        f"unknown model {model_name!r}; known: {sorted(BACKENDS)} "
        f"or 'llama-<N>b'")
