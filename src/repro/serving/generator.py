"""A tiny Markov-chain text generator: the "model" behind the LLM backend.

The paper serves Meta Llama-3-8B via Ollama.  Offline we cannot run an 8B
model, but the *runtime* does not care what produces the tokens -- it cares
that inference takes realistic time and returns text.  This bigram Markov
generator, trained on an embedded scientific-abstract corpus, produces
deterministic, prompt-conditioned text so examples and tests have real
payloads flowing through the service stack.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["MarkovGenerator", "SEED_CORPUS", "tokenize"]

SEED_CORPUS = """
Hybrid workflows combining traditional HPC and novel ML methodologies are
transforming scientific computing . Integrating machine learning methods in
high performance computing promises significant scientific insight . The
runtime system manages heterogeneous tasks across local and remote platforms
with minimal overheads . Low dose radiation induces morphological changes in
exposed cells which can be detected by fine tuned vision transformer models .
Pathway enrichment analysis combines annotated variants with known gene sets
to identify significantly enriched molecular functions . Uncertainty
quantification evaluates model calibration across random seeds and methods .
Service interfaces expose machine learning models to compute tasks through
well defined request reply protocols . The scheduler places tasks onto nodes
respecting core and accelerator requirements while services receive priority .
Bootstrap time is dominated by model initialization while response time is
dominated by network latency for trivial requests . Inference time dominates
the response when the backend generates long sequences of output tokens .
Pilot systems acquire resources through batch queues and execute many tasks
within a single allocation . Data staging moves input files to the compute
platform before execution and retrieves outputs afterwards . Experimental
results show that concurrent execution of model instances scales with the
number of available accelerators . Remote services exhibit higher latency but
equivalent throughput once inference dominates the exchange .
""".strip()


def tokenize(text: str) -> List[str]:
    """Lowercase word/punctuation tokens."""
    return re.findall(r"[a-zA-Z0-9']+|[.,;:!?]", text.lower())


class MarkovGenerator:
    """Order-1 Markov model over word tokens with deterministic sampling."""

    def __init__(self, corpus: str = SEED_CORPUS) -> None:
        tokens = tokenize(corpus)
        if len(tokens) < 2:
            raise ValueError("corpus too small")
        table: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for current, nxt in zip(tokens, tokens[1:]):
            table[current][nxt] += 1
        # Dense arrays for fast, reproducible sampling.
        self._vocab = sorted({*tokens})
        self._index = {tok: i for i, tok in enumerate(self._vocab)}
        self._successors: Dict[str, Tuple[List[str], np.ndarray]] = {}
        for tok, nexts in table.items():
            words = sorted(nexts)
            counts = np.array([nexts[w] for w in words], dtype=float)
            self._successors[tok] = (words, counts / counts.sum())
        self._start_tokens = [t for t in self._vocab
                              if t in self._successors and t not in ".,;:!?"]

    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    def generate(self, prompt: str, n_tokens: int, rng) -> str:
        """Generate *n_tokens* continuing from the prompt's last known token."""
        if n_tokens < 0:
            raise ValueError("n_tokens must be >= 0")
        if n_tokens == 0:
            return ""
        prompt_tokens = tokenize(prompt)
        current = None
        for tok in reversed(prompt_tokens):
            if tok in self._successors:
                current = tok
                break
        if current is None:
            current = self._start_tokens[
                int(rng.integers(len(self._start_tokens)))]
        out: List[str] = []
        for _ in range(n_tokens):
            entry = self._successors.get(current)
            if entry is None:  # dead end: restart from a random start token
                current = self._start_tokens[
                    int(rng.integers(len(self._start_tokens)))]
                entry = self._successors[current]
            words, probs = entry
            current = words[int(rng.choice(len(words), p=probs))]
            out.append(current)
        return " ".join(out)


#: Shared default generator (construction builds the bigram table once).
_DEFAULT: MarkovGenerator | None = None


def default_generator() -> MarkovGenerator:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MarkovGenerator()
    return _DEFAULT
