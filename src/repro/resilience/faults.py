"""Fault injection: the simulated adversary of the resilience subsystem.

The :class:`FaultInjector` turns the platform's reliability characteristics
into concrete, clock-driven fault events, all drawn from dedicated
:mod:`repro.sim.rng` streams so fault schedules are reproducible and
independent of the workload's own randomness:

* **node faults** -- per-node exponential MTBF; a fault either *crashes*
  the node (resident tasks are killed, the node rejects placements until
  its MTTR elapses) or *degrades* it (drain: running work survives, new
  placements skip it);
* **pilot preemption** -- the batch system kills a running allocation
  (``JobState.FAILED``), modelling preemptible queues and system drains;
  walltime expiry needs no injection -- the batch system already enforces
  it;
* **link flaps / corrupt transfers** -- in-flight flows on a fabric link
  fail mid-stream, and completed transfers can arrive corrupt; both surface
  as :class:`~repro.data.transfers.TransferAborted` to staging;
* **serving-instance crashes** -- a READY service's data plane dies
  abruptly (heartbeats cease; detection is the liveness watchdog's job).

The injector records ground-truth fault times so analytics can report
*detection latency* (fault to lease expiry) without the runtime itself ever
using that oracle knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim.events import AnyOf, Interrupt
from ..utils.log import get_logger
from .failures import NodeFailure

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session
    from ..pilot.task import Pilot
    from . import ResilienceServices

__all__ = ["FaultModel", "FaultRecord", "FaultInjector"]

log = get_logger("resilience.faults")


@dataclass
class FaultModel:
    """What to break, and how often."""

    #: per-node mean time between failures; None falls back to the
    #: platform's :attr:`~repro.hpc.platform.PlatformSpec.node_mtbf_s`
    #: (0 disables node faults)
    node_mtbf_s: Optional[float] = None
    #: per-node repair time after a crash; None falls back to the platform
    node_mttr_s: Optional[float] = None
    #: fraction of node faults that degrade (drain) instead of crash
    degraded_fraction: float = 0.0
    #: per-pilot preemption MTBF (0 = never preempted)
    pilot_preempt_mtbf_s: float = 0.0
    #: MTBF of link flaps across busy fabric links (0 = off)
    link_flap_mtbf_s: float = 0.0
    #: probability a completed transfer arrives corrupt
    transfer_corrupt_prob: float = 0.0
    #: MTBF of serving-instance crashes across READY services (0 = off)
    service_crash_mtbf_s: float = 0.0
    #: a lost pilot takes its platform's warm cache tier with it; lost
    #: replicas must re-stage from durable origins
    wipe_cache_on_pilot_loss: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.degraded_fraction <= 1:
            raise ValueError("degraded_fraction must be in [0, 1]")
        if not 0 <= self.transfer_corrupt_prob <= 1:
            raise ValueError("transfer_corrupt_prob must be in [0, 1]")


@dataclass(frozen=True)
class FaultRecord:
    """Ground truth of one injected fault."""

    kind: str        # node_crash | node_degraded | node_repair |
                     # pilot_preempt | link_flap | transfer_corrupt |
                     # service_crash
    target: str      # node name / pilot uid / link name / service uid
    at: float
    detail: str = ""


class FaultInjector:
    """Drives the configured :class:`FaultModel` against live entities."""

    def __init__(self, session: "Session", model: FaultModel,
                 services: "ResilienceServices") -> None:
        self.session = session
        self.model = model
        self.services = services
        self._rng = session.rng("resilience.faults")
        self.records: List[FaultRecord] = []
        self._armed_pilots: List["Pilot"] = []
        self._link_loop_running = False
        if model.transfer_corrupt_prob > 0:
            transfers = session.data.transfers
            transfers.corruption_check = self._corruption_check

    # -- bookkeeping -------------------------------------------------------------
    def _record(self, kind: str, target: str, detail: str = "") -> None:
        self.records.append(FaultRecord(
            kind=kind, target=target, at=self.session.engine.now,
            detail=detail))
        log.info("fault %s on %s at t=%.1f %s", kind, target,
                 self.session.engine.now, detail)

    def faults(self, kind: Optional[str] = None) -> List[FaultRecord]:
        if kind is None:
            return list(self.records)
        return [r for r in self.records if r.kind == kind]

    # -- arming ------------------------------------------------------------------
    def arm_pilot(self, pilot: "Pilot") -> None:
        """Attach fault processes to a freshly activated pilot.

        Every fault loop registers as a session daemon: quiesce stops the
        adversary along with the heartbeats it preys on.
        """
        engine = self.session.engine
        daemon = self.session.add_daemon
        self._armed_pilots.append(pilot)
        spec = pilot.platform
        mtbf = (self.model.node_mtbf_s if self.model.node_mtbf_s is not None
                else spec.node_mtbf_s)
        mttr = (self.model.node_mttr_s if self.model.node_mttr_s is not None
                else spec.node_mttr_s)
        if mtbf and mtbf > 0:
            for node in pilot.nodes:
                daemon(engine.process(
                    self._node_fault_loop(pilot, node, mtbf, mttr)))
        if self.model.pilot_preempt_mtbf_s > 0:
            daemon(engine.process(self._pilot_preempt(pilot)))
        if self.model.link_flap_mtbf_s > 0 and not self._link_loop_running:
            self._link_loop_running = True
            daemon(engine.process(self._link_flap_loop()))

    def arm_services(self, smgr) -> None:
        """Start the serving-instance crash process over a ServiceManager."""
        if self.model.service_crash_mtbf_s > 0:
            self.session.add_daemon(
                self.session.engine.process(self._service_crash_loop(smgr)))

    # -- node faults -------------------------------------------------------------
    def _wait_or_pilot_end(self, pilot: "Pilot", delay: float):
        """Yield until *delay* elapses or the pilot ends.  True = pilot ended."""
        engine = self.session.engine
        timer = engine.timeout(delay)
        try:
            yield AnyOf(engine, [timer, pilot.finished])
        except Interrupt:
            # session quiesce: drop the armed MTBF/MTTR timer so the final
            # drain does not advance the clock to its (possibly distant)
            # expiry; the caller's handler sees the same Interrupt
            if not timer.processed:
                timer.cancel()
            raise
        if pilot.finished.processed:
            if not timer.processed:
                timer.cancel()
            return True
        return False

    def _node_fault_loop(self, pilot: "Pilot", node, mtbf: float,
                         mttr: float):
        from ..pilot.states import PilotState
        try:
            while pilot.state == PilotState.PMGR_ACTIVE:
                delay = float(self._rng.exponential(mtbf))
                ended = yield from self._wait_or_pilot_end(pilot, delay)
                if ended:
                    return
                degraded = \
                    float(self._rng.random()) < self.model.degraded_fraction
                if degraded:
                    node.mark_degraded()
                    self._record("node_degraded", node.name, detail=pilot.uid)
                else:
                    node.mark_down()
                    self._record("node_crash", node.name, detail=pilot.uid)
                    for uid in pilot.agent.scheduler.held_on_node(node.index):
                        self.services.fail_task(
                            uid, NodeFailure(node.name, pilot.uid))
                ended = yield from self._wait_or_pilot_end(
                    pilot, max(mttr, 0.0))
                if ended:
                    return
                node.mark_up()
                self._record("node_repair", node.name)
                pilot.agent.scheduler.kick()
        except Interrupt:  # session quiesce
            return

    # -- pilot preemption --------------------------------------------------------
    def _pilot_preempt(self, pilot: "Pilot"):
        from ..hpc.batch import JobState
        from ..pilot.states import PilotState
        delay = float(self._rng.exponential(self.model.pilot_preempt_mtbf_s))
        try:
            ended = yield from self._wait_or_pilot_end(pilot, delay)
        except Interrupt:  # session quiesce
            return
        if ended:
            return
        if pilot.state != PilotState.PMGR_ACTIVE \
                or pilot.batch_job.state != JobState.RUNNING:
            return
        self._record("pilot_preempt", pilot.uid,
                     detail=pilot.platform.name)
        batch = self.session.batch_system(pilot.platform.name)
        batch.fail(pilot.batch_job)
        if self.model.wipe_cache_on_pilot_loss:
            self.services.wipe_platform_cache(pilot.platform.name)

    # -- link faults -------------------------------------------------------------
    def _corruption_check(self, src: str, dst: str, nbytes: float) -> bool:
        corrupt = float(self._rng.random()) < self.model.transfer_corrupt_prob
        if corrupt:
            self._record("transfer_corrupt", f"{src}->{dst}",
                         detail=f"{nbytes:.3g}B")
        return corrupt

    def _link_flap_loop(self):
        from ..data.transfers import TransferAborted
        from ..pilot.states import PilotState
        engine = self.session.engine
        timer = None
        try:
            while True:
                delay = float(self._rng.exponential(
                    self.model.link_flap_mtbf_s))
                timer = engine.timeout(delay)
                yield timer
                if self._armed_pilots and all(
                        p.state in PilotState.FINAL
                        for p in self._armed_pilots):
                    return  # campaign over: stop generating events
                busy = [link for link
                        in self.session.data.transfers.links().values()
                        if link.active_flows]
                if not busy:
                    continue
                link = busy[int(self._rng.integers(len(busy)))]
                n = link.interrupt_all(
                    lambda flow: TransferAborted(f"link {link.name} flapped"))
                self._record("link_flap", link.name,
                             detail=f"{n} flows killed")
        except Interrupt:  # session quiesce
            if timer is not None and not timer.processed:
                timer.cancel()
            return

    # -- service crashes ---------------------------------------------------------
    def _service_crash_loop(self, smgr):
        from ..pilot.states import ServiceState
        engine = self.session.engine
        timer = None
        try:
            while True:
                delay = float(self._rng.exponential(
                    self.model.service_crash_mtbf_s))
                timer = engine.timeout(delay)
                yield timer
                if smgr.services and all(
                        h.service_state in ServiceState.FINAL
                        for h in smgr.services):
                    return
                ready = smgr.ready_services()
                if not ready:
                    continue
                victim = ready[int(self._rng.integers(len(ready)))]
                self._record("service_crash", victim.uid)
                smgr.crash_service(victim)
        except Interrupt:  # session quiesce
            if timer is not None and not timer.processed:
                timer.cancel()
            return
