"""Heartbeat-based failure detection with lease semantics.

The runtime never *knows* a remote component died -- it only stops hearing
from it.  Components under watch publish periodic heartbeats on a per-entity
bus topic (paying fabric latency like any other message); the
:class:`HeartbeatMonitor` keeps a lease per entity that expires after
``misses`` silent intervals.  Lease expiry is the moment the failure is
*observed*: recovery policies key off the monitor's declaration event, so
detection latency (fault time to declaration) is a real, measurable cost of
the control plane rather than oracle knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim.events import Event
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = ["heartbeat_topic", "DetectionRecord", "Lease", "HeartbeatMonitor"]

log = get_logger("resilience.detection")


def heartbeat_topic(uid: str) -> str:
    """Bus topic an entity's heartbeats are published on."""
    return f"hb.{uid}"


@dataclass(frozen=True)
class DetectionRecord:
    """One lease expiry: when the silence started and when it was declared."""

    uid: str
    last_beat_at: float
    declared_at: float

    @property
    def silence_s(self) -> float:
        return self.declared_at - self.last_beat_at


class Lease:
    """Liveness lease of one watched entity."""

    def __init__(self, session: "Session", uid: str, interval_s: float,
                 misses: int) -> None:
        self.uid = uid
        self.interval_s = interval_s
        self.misses = misses
        self.last_beat_at = session.engine.now  # lease starts at watch time
        self.beats = 0
        self.deregistered = False
        #: succeeds (with the declaration timestamp) once the lease expires
        self.declared: Event = session.engine.event()

    @property
    def expired(self) -> bool:
        return self.declared.triggered


class HeartbeatMonitor:
    """Watches heartbeat topics and declares entities dead on lease expiry."""

    def __init__(self, session: "Session",
                 platform: str = "localhost") -> None:
        self.session = session
        self.platform = platform
        self._leases: Dict[str, Lease] = {}
        #: every lease expiry ever declared (feeds FailureMetrics)
        self.detections: List[DetectionRecord] = []
        self._obs = session.observability

    # -- watching ----------------------------------------------------------------
    def watch(self, uid: str, interval_s: float, misses: int = 3,
              topic: Optional[str] = None) -> Lease:
        """Start watching *uid*; returns its lease.  Idempotent per uid.

        *topic* overrides the heartbeat topic (service instances publish
        on their pre-existing ``heartbeat.<uid>`` channel; pilots use
        :func:`heartbeat_topic`).
        """
        lease = self._leases.get(uid)
        if lease is not None:
            return lease
        if interval_s <= 0 or misses < 1:
            raise ValueError("need interval_s > 0 and misses >= 1")
        lease = Lease(self.session, uid, interval_s, misses)
        self._leases[uid] = lease
        sub = self.session.bus.subscribe(topic or heartbeat_topic(uid),
                                         platform=self.platform)
        self.session.add_daemon(
            self.session.engine.process(self._watchdog(lease, sub)))
        return lease

    def deregister(self, uid: str) -> None:
        """Orderly goodbye: stop watching without declaring a failure."""
        lease = self._leases.get(uid)
        if lease is not None:
            lease.deregistered = True

    # -- queries -----------------------------------------------------------------
    def lease(self, uid: str) -> Optional[Lease]:
        return self._leases.get(uid)

    def declared(self, uid: str) -> Optional[Event]:
        """The declaration event of *uid* (None if never watched)."""
        lease = self._leases.get(uid)
        return lease.declared if lease is not None else None

    def is_live(self, uid: str) -> bool:
        lease = self._leases.get(uid)
        return lease is not None and not lease.expired \
            and not lease.deregistered

    # -- the watchdog ------------------------------------------------------------
    def _watchdog(self, lease: Lease, sub):
        """Lease loop: each beat re-arms the timer; silence declares death.

        A session daemon: quiesce interrupts the loop, which counts as an
        orderly goodbye (no failure is declared for the ensuing silence).
        """
        from ..sim.events import Interrupt
        engine = self.session.engine
        get_ev = sub.get()
        timer = None
        try:
            while True:
                timer = engine.timeout(lease.interval_s * lease.misses)
                yield engine.any_of([get_ev, timer])
                if lease.deregistered:
                    if not timer.processed:
                        timer.cancel()
                    return
                if get_ev.processed:
                    if not timer.processed:
                        timer.cancel()
                    lease.last_beat_at = engine.now
                    lease.beats += 1
                    get_ev = sub.get()
                    continue
                # misses * interval of silence: the entity is observably dead
                record = DetectionRecord(uid=lease.uid,
                                         last_beat_at=lease.last_beat_at,
                                         declared_at=engine.now)
                self.detections.append(record)
                log.warning("%s lease expired at t=%.1f (last beat t=%.1f)",
                            lease.uid, engine.now, lease.last_beat_at)
                obs = self._obs
                if obs is not None:
                    if obs.metrics is not None:
                        obs.metrics.histogram(
                            "detection_silence_s").observe(record.silence_s)
                    if obs.monitors is not None:
                        from ..observability.monitor import AnomalyEvent
                        obs.monitors.emit(AnomalyEvent(
                            kind="lease_expired", t=engine.now,
                            subject=lease.uid,
                            message=(f"{lease.uid} declared dead after "
                                     f"{record.silence_s:.1f}s of silence"),
                            severity="critical",
                            details={"silence_s": record.silence_s,
                                     "last_beat_at": lease.last_beat_at}))
                lease.declared.succeed(engine.now)
                return
        except Interrupt:
            # orderly goodbye (session quiesce): drop the armed lease
            # timer so the drain does not advance the clock to its expiry
            lease.deregistered = True
            if timer is not None and not timer.processed:
                timer.cancel()
            return
        finally:
            sub.cancel()
