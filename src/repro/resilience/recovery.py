"""Policy-driven recovery: retries, checkpoints, pilot resubmission.

Three policies cover the failure modes of long-running hybrid campaigns:

* :class:`RetryPolicy` -- bounded per-task retries with jittered
  exponential backoff.  Pilot losses gate on the heartbeat monitor's
  *declaration* (failures are acted on when observed, not when they
  happen), failed nodes/pilots are blacklisted, and the retried task
  late-binds to whatever healthy pilot the TaskManager then holds.
* :class:`CheckpointPolicy` / :class:`Checkpointer` -- iterative workflows
  persist per-iteration state as durable ObjectStore objects (the save
  pays a real transfer to the checkpoint home), so a campaign restart
  replays only work lost since the last checkpoint; lost cache replicas
  re-stage from the durable origins the data subsystem already tracks.
* :class:`PilotResubmitPolicy` -- a pilot declared dead by the monitor is
  resubmitted through the platform's batch system (paying queue wait
  again) and re-attached to the TaskManagers that held it, so waiting
  retries find capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    MutableMapping,
    Optional,
    Tuple,
)

from ..sim.events import AnyOf
from ..utils.log import get_logger
from .failures import FailureReason

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.pilot_manager import PilotManager
    from ..pilot.task import Pilot, Task
    from ..pilot.task_manager import TaskManager
    from . import ResilienceServices

__all__ = [
    "RetryPolicy",
    "CheckpointPolicy",
    "PilotResubmitPolicy",
    "RecoveryRecord",
    "RecoveryEngine",
    "Checkpointer",
]

log = get_logger("resilience.recovery")


@dataclass
class RetryPolicy:
    """Bounded retries with backoff, blacklisting and late re-binding."""

    max_retries: int = 2
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    backoff_jitter_s: float = 0.5
    #: failure origins worth retrying (binding errors and cancellations
    #: are not infrastructure faults)
    retry_origins: Tuple[str, ...] = (
        "node", "pilot", "transfer", "staging", "executor", "service")
    blacklist_pilots: bool = True
    blacklist_nodes: bool = True
    #: how long a retry may wait for a healthy pilot before giving up
    rebind_wait_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_jitter_s < 0:
            raise ValueError("backoff settings must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")


@dataclass
class CheckpointPolicy:
    """How often iterative workflows persist state, and where."""

    #: checkpoint every k-th iteration (1 = every iteration)
    interval_iters: int = 1
    #: default serialized-state size charged per save (bytes)
    checkpoint_bytes: float = 0.0
    #: durable home of checkpoint objects (the client side by default)
    home_platform: str = "localhost"

    def __post_init__(self) -> None:
        if self.interval_iters < 1:
            raise ValueError("interval_iters must be >= 1")
        if self.checkpoint_bytes < 0:
            raise ValueError("checkpoint_bytes must be >= 0")


@dataclass
class PilotResubmitPolicy:
    """Resubmit pilots the monitor declares dead."""

    #: resubmissions allowed per pilot lineage (original + replacements)
    max_resubmits: int = 1

    def __post_init__(self) -> None:
        if self.max_resubmits < 0:
            raise ValueError("max_resubmits must be >= 0")


@dataclass(frozen=True)
class RecoveryRecord:
    """One granted task retry: failure to re-dispatch."""

    task_uid: str
    origin: str
    failed_at: float
    resumed_at: float
    attempt: int       # the attempt that failed

    @property
    def latency_s(self) -> float:
        return self.resumed_at - self.failed_at


class RecoveryEngine:
    """Applies the configured policies to observed failures."""

    def __init__(self, services: "ResilienceServices") -> None:
        self.services = services
        self.session = services.session
        self.config = services.config
        self._rng = self.session.rng("resilience.recovery")
        self.blacklisted_pilots: set = set()
        self.blacklisted_nodes: set = set()
        #: granted retries (feeds recovery-latency distributions)
        self.records: List[RecoveryRecord] = []
        #: task uids whose retries were exhausted or timed out
        self.gave_up: List[str] = []
        #: (dead_uid, new_uid, at) of every pilot resubmission
        self.resubmissions: List[Tuple[str, str, float]] = []
        self._resubmit_count: Dict[str, int] = {}   # lineage root -> count
        self._lineage: Dict[str, str] = {}          # pilot uid -> root uid

    # -- task retries ------------------------------------------------------------
    def task_failed(self, tmgr: "TaskManager", task: "Task",
                    reason: Optional[FailureReason]):
        """Decide the fate of a failed task attempt.

        Returns None (give up: the task stays FAILED) or a generator the
        task driver runs; the generator yields through detection + backoff
        + capacity gates and returns True to retry, False to give up.
        """
        policy = self.config.retry
        if policy is None or reason is None:
            return None
        if reason.origin not in policy.retry_origins:
            return None
        if task.attempts > policy.max_retries:
            self.gave_up.append(task.uid)
            return None
        if policy.blacklist_pilots and reason.origin == "pilot" \
                and reason.pilot_uid:
            self.blacklisted_pilots.add(reason.pilot_uid)
        if policy.blacklist_nodes and reason.node_name:
            self.blacklisted_nodes.add(reason.node_name)
            task.avoid_nodes.add(reason.node_name)
        return self._retry_plan(tmgr, task, reason, policy)

    def _retry_plan(self, tmgr: "TaskManager", task: "Task",
                    reason: FailureReason, policy: RetryPolicy):
        engine = self.session.engine
        failed_at = engine.now
        # 1. Detection gate: a lost pilot is only *observed* dead once its
        #    heartbeat lease expires; acting earlier would be oracle
        #    knowledge the real control plane does not have.
        if reason.origin == "pilot" and reason.pilot_uid:
            declared = self.services.monitor.declared(reason.pilot_uid)
            if declared is not None and not declared.processed:
                yield declared
        # 2. Jittered exponential backoff.
        delay = policy.backoff_base_s \
            * policy.backoff_factor ** (task.attempts - 1)
        if policy.backoff_jitter_s > 0:
            delay += float(self._rng.uniform(0, policy.backoff_jitter_s))
        if delay > 0:
            yield engine.timeout(delay)
        # 3. Capacity gate: late re-binding needs a live pilot; wait for
        #    one (e.g. a resubmission clearing the batch queue) up to the
        #    policy's patience.
        deadline = engine.now + policy.rebind_wait_s
        while not self._has_capacity(tmgr):
            remaining = deadline - engine.now
            if remaining <= 0:
                self.gave_up.append(task.uid)
                log.warning("%s: no pilot capacity within %.0fs; giving up",
                            task.uid, policy.rebind_wait_s)
                return False
            timer = engine.timeout(remaining)
            yield AnyOf(engine, [tmgr.pilots_changed, timer])
            if not timer.processed:
                timer.cancel()
        self.records.append(RecoveryRecord(
            task_uid=task.uid, origin=reason.origin, failed_at=failed_at,
            resumed_at=engine.now, attempt=reason.attempt))
        return True

    def _has_capacity(self, tmgr: "TaskManager") -> bool:
        from ..pilot.states import PilotState
        return any(p.state not in PilotState.FINAL for p in tmgr.pilots)

    # -- pilot resubmission ------------------------------------------------------
    def watch_pilot(self, pmgr: "PilotManager", pilot: "Pilot",
                    lease) -> None:
        """Arm resubmission for *pilot*: act when its lease expires."""
        self.session.engine.process(
            self._pilot_declared_watch(pmgr, pilot, lease))

    def _pilot_declared_watch(self, pmgr: "PilotManager", pilot: "Pilot",
                              lease):
        yield lease.declared   # only ever fires for unclean deaths
        policy = self.config.pilot_resubmit
        if policy is None:
            return
        root = self._lineage.get(pilot.uid, pilot.uid)
        used = self._resubmit_count.get(root, 0)
        if used >= policy.max_resubmits:
            log.warning("%s: resubmission budget exhausted (%d)",
                        pilot.uid, used)
            return
        self._resubmit_count[root] = used + 1
        (replacement,) = pmgr.submit_pilots(pilot.description)
        self._lineage[replacement.uid] = root
        self.resubmissions.append(
            (pilot.uid, replacement.uid, self.session.engine.now))
        log.info("resubmitted %s as %s (lineage %s, %d/%d)", pilot.uid,
                 replacement.uid, root, used + 1, policy.max_resubmits)
        for tmgr in self.services.task_managers:
            if any(p.uid == pilot.uid for p in tmgr.pilots):
                tmgr.add_pilots(replacement)

    # -- introspection -----------------------------------------------------------
    @property
    def retries_granted(self) -> int:
        return len(self.records)

    def recovery_latencies(self) -> List[float]:
        return [r.latency_s for r in self.records]


class Checkpointer:
    """Per-iteration checkpoints as durable, content-addressed objects.

    ``save`` is a simulation (sub)process: the serialized state crosses the
    fabric to the checkpoint home (sharing links with live staging -- a
    checkpoint is not free) before the object is registered durable and
    the in-memory payload committed.  The backing *store* survives the
    session when the caller provides one, which is what lets a restarted
    campaign resume from its predecessor's last checkpoint.
    """

    def __init__(self, session, policy: CheckpointPolicy,
                 store: Optional[MutableMapping] = None) -> None:
        self.session = session
        self.policy = policy
        self._store: MutableMapping = store if store is not None else {}
        self.saves = 0
        self.restores = 0

    def due(self, iteration: int) -> bool:
        """Is *iteration* (0-based) a checkpoint boundary under the policy?"""
        return (iteration + 1) % self.policy.interval_iters == 0

    def save(self, key: str, iteration: int, payload: Any,
             nbytes: Optional[float] = None,
             src_platform: Optional[str] = None):
        """Process body: persist *payload* as checkpoint *iteration* of *key*."""
        nbytes = self.policy.checkpoint_bytes if nbytes is None else nbytes
        home = self.policy.home_platform
        src = src_platform or home
        if nbytes > 0:
            yield from self.session.data.transfers.transfer(
                src, home, nbytes, uid=f"ckpt.{key}.{iteration}")
        obj = self.session.data.objects.intern(
            f"ckpt/{key}/{iteration}", nbytes or 0)
        self.session.data.register_durable(obj.oid, home)
        self._store[key] = (iteration, payload)
        self.saves += 1
        self.session.profiler.record(
            self.session.engine.now, f"ckpt.{key}", "checkpoint_save",
            "resilience")

    def latest(self, key: str) -> Optional[Tuple[int, Any]]:
        """Most recent ``(iteration, payload)`` for *key*, or None."""
        found = self._store.get(key)
        if found is not None:
            self.restores += 1
            self.session.profiler.record(
                self.session.engine.now, f"ckpt.{key}", "checkpoint_restore",
                "resilience")
        return found

    def has(self, key: str) -> bool:
        return key in self._store
