"""Failure taxonomy: typed fault exceptions and structured failure reasons.

Every component that can break a task attaches a :class:`FailureReason`
instead of only logging the exception: the reason names the exception type,
the *origin component* (node, pilot, transfer, executor, scheduler, ...)
and the attempt it killed, so recovery policies can decide per-origin and
``analytics`` can report failure-reason counts rather than a log grep.

The exception classes below are the *injected / infrastructure* faults.
They derive from :class:`RuntimeFault` so the task driver can tell an
infrastructure failure delivered via interrupt (retry material) apart from
a user cancellation (never retried).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "RuntimeFault",
    "NodeFailure",
    "PilotLost",
    "ServiceCrash",
    "FailureReason",
    "classify_failure",
    "failure_counts",
]


class RuntimeFault(RuntimeError):
    """Base class for infrastructure faults (as opposed to user errors)."""


class NodeFailure(RuntimeFault):
    """A compute node crashed under the task."""

    def __init__(self, node_name: str, pilot_uid: str = "") -> None:
        super().__init__(f"node {node_name} failed")
        self.node_name = node_name
        self.pilot_uid = pilot_uid


class PilotLost(RuntimeFault):
    """The pilot hosting the task died (preemption, walltime, crash)."""

    def __init__(self, pilot_uid: str, state: str = "FAILED") -> None:
        super().__init__(f"pilot {pilot_uid} lost ({state})")
        self.pilot_uid = pilot_uid
        self.state = state


class ServiceCrash(RuntimeFault):
    """A serving instance crashed (process died, stops heartbeating)."""

    def __init__(self, service_uid: str) -> None:
        super().__init__(f"service {service_uid} crashed")
        self.service_uid = service_uid


@dataclass(frozen=True)
class FailureReason:
    """Structured description of one task-attempt failure."""

    exception_type: str     # e.g. "NodeFailure", "TransferAborted"
    origin: str             # component family: node|pilot|transfer|executor|
                            # scheduler|staging|service|binding
    message: str
    at: float               # sim time the failure was recorded
    attempt: int            # 1-based attempt number it killed
    component: str = ""     # uid of the recording component
    pilot_uid: Optional[str] = None
    node_name: Optional[str] = None
    #: core-seconds consumed by the killed attempt (wasted work)
    wasted_core_s: float = 0.0

    @property
    def key(self) -> str:
        """Counting key for analytics: ``origin:ExceptionType``."""
        return f"{self.origin}:{self.exception_type}"


def classify_failure(exc: BaseException, at: float, attempt: int,
                     phase: str = "", component: str = "",
                     wasted_core_s: float = 0.0) -> FailureReason:
    """Map an exception (plus the phase it hit) to a :class:`FailureReason`.

    Typed faults carry their own origin; anything else is attributed to the
    pipeline *phase* that raised it (binding, stage_in, executor,
    stage_out), so a plain ValueError out of a function payload reads
    ``executor:ValueError`` while the same exception during input staging
    reads ``staging:ValueError``.
    """
    pilot_uid = getattr(exc, "pilot_uid", None) or None
    node_name = getattr(exc, "node_name", None)
    name = type(exc).__name__
    if isinstance(exc, NodeFailure):
        origin = "node"
    elif isinstance(exc, PilotLost):
        origin = "pilot"
    elif isinstance(exc, ServiceCrash):
        origin = "service"
    elif name == "TransferAborted":
        origin = "transfer"
    elif name in ("SchedulerError", "ExecutionError"):
        origin = "scheduler" if name == "SchedulerError" else "executor"
    else:
        origin = {"": "executor", "binding": "binding",
                  "stage_in": "staging", "stage_out": "staging",
                  "agent": "executor"}.get(phase, phase or "executor")
    return FailureReason(
        exception_type=name, origin=origin, message=str(exc), at=at,
        attempt=attempt, component=component, pilot_uid=pilot_uid,
        node_name=node_name, wasted_core_s=wasted_core_s)


def failure_counts(tasks: Iterable) -> Dict[str, int]:
    """Failure-reason counts (``origin:ExceptionType``) over task history.

    Counts every recorded attempt failure, not just the terminal one, so
    retried-then-successful tasks still show what broke along the way.
    """
    counts: Dict[str, int] = {}
    for task in tasks:
        for reason in getattr(task, "failures", ()):
            counts[reason.key] = counts.get(reason.key, 0) + 1
    return counts
