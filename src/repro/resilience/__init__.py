"""The resilience subsystem: fault model, detection, policy-driven recovery.

Leadership-class platforms fail as a matter of course -- node crashes,
pilot preemption and walltime expiry, link flaps, serving-instance deaths.
The seed runtime's only failure path was marking a task FAILED; this
package gives the runtime the full loop:

* :mod:`repro.resilience.faults`    -- clock-driven fault injection from
  dedicated RNG streams (ground truth for metrics, never used by recovery);
* :mod:`repro.resilience.detection` -- heartbeat leases over the message
  bus: failures are *observed* with latency, not known instantly;
* :mod:`repro.resilience.recovery`  -- retry with backoff + blacklists,
  durable per-iteration checkpoints, pilot resubmission;
* :mod:`repro.resilience.failures`  -- the structured failure taxonomy
  every layer attaches to tasks.

:class:`ResilienceServices` is the session-scoped facade;
``Session(resilience_config=ResilienceConfig(...))`` turns it on.  Without
a config the runtime behaves exactly as before (no heartbeats, no retries,
instant task failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, MutableMapping, Optional

from ..comm.message import Address
from ..utils.log import get_logger
from .detection import DetectionRecord, HeartbeatMonitor, Lease, heartbeat_topic
from .failures import (
    FailureReason,
    NodeFailure,
    PilotLost,
    RuntimeFault,
    ServiceCrash,
    classify_failure,
    failure_counts,
)
from .faults import FaultInjector, FaultModel, FaultRecord
from .recovery import (
    Checkpointer,
    CheckpointPolicy,
    PilotResubmitPolicy,
    RecoveryEngine,
    RecoveryRecord,
    RetryPolicy,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.pilot_manager import PilotManager
    from ..pilot.session import Session
    from ..pilot.task import Pilot

__all__ = [
    "Checkpointer",
    "CheckpointPolicy",
    "DetectionRecord",
    "FailureReason",
    "FaultInjector",
    "FaultModel",
    "FaultRecord",
    "HeartbeatMonitor",
    "Lease",
    "NodeFailure",
    "PilotLost",
    "PilotResubmitPolicy",
    "RecoveryEngine",
    "RecoveryRecord",
    "ResilienceConfig",
    "ResilienceServices",
    "RetryPolicy",
    "RuntimeFault",
    "ServiceCrash",
    "classify_failure",
    "failure_counts",
    "heartbeat_topic",
]

log = get_logger("resilience")


@dataclass
class ResilienceConfig:
    """Tuning knobs of the resilience subsystem (the Session facade)."""

    #: cadence of pilot-agent heartbeats published over the bus
    heartbeat_interval_s: float = 5.0
    #: silent intervals before a lease expires (detection declares death)
    lease_misses: int = 3
    #: platform the monitor listens from (heartbeats pay fabric latency
    #: from the entity's platform to here)
    monitor_platform: str = "localhost"
    #: task-retry policy (None = failures are terminal, as in the seed)
    retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    #: checkpoint cadence/cost for iterative workflows (None = defaults)
    checkpoint: Optional[CheckpointPolicy] = None
    #: resubmit pilots the monitor declares dead (None = off)
    pilot_resubmit: Optional[PilotResubmitPolicy] = None
    #: fault model to inject (None = no injection; detection/recovery
    #: still cover organically failing components)
    faults: Optional[FaultModel] = None
    #: external durable checkpoint store; pass the same mapping to a new
    #: session to resume a restarted campaign from its predecessor's state
    checkpoint_store: Optional[MutableMapping] = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.lease_misses < 1:
            raise ValueError("lease_misses must be >= 1")


class ResilienceServices:
    """Session-scoped facade stitching injection, detection and recovery."""

    def __init__(self, session: "Session",
                 config: Optional[ResilienceConfig] = None) -> None:
        self.session = session
        self.config = config or ResilienceConfig()
        self.monitor = HeartbeatMonitor(
            session, platform=self.config.monitor_platform)
        self.recovery = RecoveryEngine(self)
        self.checkpoints = Checkpointer(
            session, self.config.checkpoint or CheckpointPolicy(),
            store=self.config.checkpoint_store)
        self.injector: Optional[FaultInjector] = (
            FaultInjector(session, self.config.faults, self)
            if self.config.faults is not None else None)
        #: managers registered for recovery fan-out
        self.task_managers: List = []
        self.pilot_managers: List = []

    # -- registration ------------------------------------------------------------
    def register_task_manager(self, tmgr) -> None:
        if tmgr not in self.task_managers:
            self.task_managers.append(tmgr)

    def register_pilot_manager(self, pmgr) -> None:
        if pmgr not in self.pilot_managers:
            self.pilot_managers.append(pmgr)

    # -- pilot lifecycle hooks (called by the PilotManager) ----------------------
    def pilot_activated(self, pmgr: "PilotManager", pilot: "Pilot") -> None:
        """Start heartbeats, the lease watchdog and armed fault processes."""
        lease = self.monitor.watch(pilot.uid,
                                   self.config.heartbeat_interval_s,
                                   self.config.lease_misses)
        self.session.add_daemon(
            self.session.engine.process(self._pilot_heartbeat(pilot)))
        self.recovery.watch_pilot(pmgr, pilot, lease)
        if self.injector is not None:
            self.injector.arm_pilot(pilot)

    def pilot_finalized(self, pilot: "Pilot", state: str) -> None:
        """Orderly endings deregister the lease; dirty deaths let it expire."""
        from ..pilot.states import PilotState
        if state != PilotState.FAILED:
            self.monitor.deregister(pilot.uid)

    def _pilot_heartbeat(self, pilot: "Pilot"):
        """Agent-side heartbeat loop: beats stop the instant the pilot dies.

        Runs as a session daemon: :meth:`Session.quiesce` interrupts it so
        a final ``run()`` can drain instead of re-arming beats forever.
        """
        from ..pilot.states import PilotState
        from ..sim.events import Interrupt
        engine = self.session.engine
        sender = Address(name=f"{pilot.uid}.hb",
                         platform=pilot.platform.name)
        timer = None
        try:
            while pilot.state == PilotState.PMGR_ACTIVE:
                self.session.bus.publish(
                    heartbeat_topic(pilot.uid),
                    {"uid": pilot.uid, "t": engine.now}, sender=sender)
                timer = engine.timeout(self.config.heartbeat_interval_s)
                yield timer
        except Interrupt:
            self.monitor.deregister(pilot.uid)
            if timer is not None and not timer.processed:
                timer.cancel()

    # -- fan-out helpers ---------------------------------------------------------
    def fail_task(self, uid: str, exc: BaseException) -> bool:
        """Deliver an infrastructure fault to the task driver owning *uid*."""
        for tmgr in self.task_managers:
            task = tmgr._tasks.get(uid)
            if task is not None:
                tmgr.fail_task(task, exc)
                return True
        return False

    def wipe_platform_cache(self, platform: str) -> int:
        """Drop every cache replica at *platform* (lost warm tier).

        Durable origins survive; the data subsystem re-stages lost
        replicas from them on the next request.  Returns the victim count.
        """
        data = self.session.data
        victims = data.cache.entries(platform)
        for oid in victims:
            data.cache.evict(platform, oid)
            data.replicas.remove(oid, platform)
        if victims:
            log.warning("platform %s lost %d cache replicas", platform,
                        len(victims))
        return len(victims)

    # -- metrics support ---------------------------------------------------------
    def detection_latencies(self) -> List[float]:
        """Fault-to-declaration latencies, joining leases with ground truth.

        Detections are matched against the injector's fault records per
        target uid (first unmatched fault wins).  Without an injector the
        observable silence (last beat to declaration) is reported instead.
        """
        if self.injector is None:
            return [d.silence_s for d in self.monitor.detections]
        out: List[float] = []
        used: set = set()
        for det in self.monitor.detections:
            candidates = [
                (i, r) for i, r in enumerate(self.injector.records)
                if i not in used and r.at <= det.declared_at
                and r.target == det.uid]
            if not candidates:
                # not injector-caused (e.g. walltime expiry): the silence
                # window is the observable proxy
                out.append(det.silence_s)
                continue
            i, fault = max(candidates, key=lambda pair: pair[1].at)
            used.add(i)
            out.append(det.declared_at - fault.at)
        return out
