"""Message envelopes and payload size accounting.

Every exchange on the bus is a :class:`Message`: a routable envelope with a
correlation id (to pair requests with replies), sender/recipient addresses
and wire-size estimation.  Size matters because the fabric charges
``latency + nbytes/bandwidth`` per delivery -- a NOOP request is a few hundred
bytes, a staged image batch is megabytes.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Address", "Message", "LoadReport", "TELEMETRY_TOPIC",
           "estimate_size"]

_MSG_COUNTER = itertools.count()

#: Pub/sub topic on which every service instance publishes its
#: :class:`LoadReport` alongside the per-instance heartbeat topic.  The
#: :class:`~repro.core.registry.EndpointRegistry` subscribes here so load
#: balancers and the autoscaler can consume fleet-wide telemetry.
TELEMETRY_TOPIC = "service.telemetry"

#: Fixed framing overhead per message (headers, envelope), in bytes.
ENVELOPE_OVERHEAD = 256


def estimate_size(payload: Any) -> int:
    """Estimate the wire size of *payload* in bytes.

    Uses the pickle encoding length (the bus serialises with pickle, like
    mpi4py's lowercase communication methods) plus envelope overhead.
    Objects that cannot be pickled are charged the overhead only -- they can
    still travel in-process, mirroring ZeroMQ inproc transports.
    """
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)) \
            + ENVELOPE_OVERHEAD
    except Exception:
        return ENVELOPE_OVERHEAD


@dataclass(frozen=True)
class Address:
    """A bus endpoint address: a unique name plus its hosting platform.

    The platform is what the fabric uses to sample latency for deliveries
    to/from this endpoint.
    """

    name: str
    platform: str

    def __str__(self) -> str:
        return f"{self.name}@{self.platform}"


@dataclass
class LoadReport:
    """Per-instance load telemetry carried on heartbeat messages.

    ``ewma_service_s`` is the exponentially-weighted moving average of the
    *marginal* per-request service cost (batch busy span divided by batch
    size), so ``queue_depth * ewma_service_s / workers`` estimates the
    queueing delay a newly-admitted request would see.
    """

    uid: str
    t: float                      # simulation time the report was taken
    queue_depth: int              # admitted requests waiting for a worker
    in_flight: int                # requests currently being processed
    ewma_service_s: float         # EWMA marginal per-request service time
    handled: int                  # requests completed since start
    shed: int                     # requests rejected with a busy reply
    workers: int                  # concurrent worker loops
    max_batch_size: int           # per-dispatch coalescing limit
    queue_bound: int = 0          # admission bound (0 = unbounded)

    @property
    def capacity(self) -> int:
        """Requests the instance can process concurrently."""
        return self.workers * self.max_batch_size

    @property
    def backlog(self) -> int:
        """Requests admitted but not yet completed."""
        return self.queue_depth + self.in_flight

    @property
    def est_queue_delay_s(self) -> float:
        """Estimated wait for a newly-admitted request (seconds)."""
        return self.queue_depth * self.ewma_service_s / max(1, self.workers)


@dataclass
class Message:
    """One envelope travelling on the bus."""

    kind: str                      # "request" | "reply" | "pub" | "control"
    payload: Any
    sender: Optional[Address] = None
    recipient: Optional[Address] = None
    topic: Optional[str] = None    # for pub/sub traffic
    corr_id: Optional[int] = None  # pairs replies with requests
    #: server-side bookkeeping attached to replies (timestamps, etc.)
    meta: Dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_MSG_COUNTER))
    sent_at: Optional[float] = None
    received_at: Optional[float] = None

    @property
    def nbytes(self) -> int:
        """Wire-size estimate (cached after first computation)."""
        cached = self.meta.get("_nbytes")
        if cached is None:
            cached = estimate_size(self.payload)
            self.meta["_nbytes"] = cached
        return cached

    def make_reply(self, payload: Any, sender: Address,
                   meta: Optional[Dict[str, Any]] = None) -> "Message":
        """Build the reply envelope for this request."""
        if self.sender is None:
            raise ValueError("cannot reply to a message without a sender")
        return Message(
            kind="reply",
            payload=payload,
            sender=sender,
            recipient=self.sender,
            corr_id=self.corr_id if self.corr_id is not None else self.uid,
            meta=dict(meta or {}),
        )

    def __repr__(self) -> str:
        return (f"<Message #{self.uid} {self.kind} "
                f"{self.sender}->{self.recipient} corr={self.corr_id}>")
