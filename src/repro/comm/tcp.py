"""Real TCP transport: JSON-lines request/reply over sockets.

The simulation bus (:mod:`repro.comm.bus`) models communication; this module
provides *actual* networking so the examples can demonstrate genuinely
remote services (the paper's R3 scenario exposes models "via REST and ZeroMQ
interfaces").  Protocol: one JSON object per line, request in, reply out.

Kept deliberately small: a threaded server wrapping a handler callable, and
a client with per-request connections and timeouts.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from ..utils.log import get_logger

__all__ = ["TcpServiceServer", "TcpServiceClient", "RemoteError"]

log = get_logger("comm.tcp")


class RemoteError(Exception):
    """Raised client-side when the server reports a handler failure."""


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "TcpServiceServer" = self.server.owner  # type: ignore[attr-defined]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                self._send({"ok": False, "error": f"bad request: {exc}"})
                continue
            try:
                result = server.handler(request)
                self._send({"ok": True, "result": result})
            except Exception as exc:  # handler errors travel to the client
                log.exception("handler failed")
                self._send({"ok": False, "error": str(exc)})

    def _send(self, obj: Dict[str, Any]) -> None:
        data = json.dumps(obj).encode("utf-8") + b"\n"
        self.wfile.write(data)
        self.wfile.flush()


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpServiceServer:
    """A threaded JSON-lines server exposing ``handler(request) -> reply``.

    Usage::

        server = TcpServiceServer(handler=my_model.handle)
        server.start()            # binds an ephemeral port
        ... TcpServiceClient(*server.endpoint).request({...}) ...
        server.stop()
    """

    def __init__(self, handler: Callable[[Dict[str, Any]], Any],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.handler = handler
        self._server = _ThreadingServer((host, port), _Handler)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def endpoint(self) -> Tuple[str, int]:
        """(host, port) the server is bound to."""
        return self._server.server_address[:2]

    def start(self) -> "TcpServiceServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name="tcp-service-server")
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "TcpServiceServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class TcpServiceClient:
    """Per-request JSON-lines client with timeouts."""

    def __init__(self, host: str, port: int, timeout_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def request(self, payload: Dict[str, Any]) -> Any:
        """Send one request; returns the handler result or raises."""
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout_s) as sock:
            sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
                if data.endswith(b"\n"):
                    break
        raw = b"".join(chunks).strip()
        if not raw:
            raise RemoteError("connection closed without a reply")
        reply = json.loads(raw.decode("utf-8"))
        if not reply.get("ok"):
            raise RemoteError(reply.get("error", "unknown remote error"))
        return reply.get("result")

    def ping(self) -> bool:
        """Liveness probe: can we open a connection?"""
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=self.timeout_s):
                return True
        except OSError:
            return False
