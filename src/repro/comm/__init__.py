"""Communication substrate: the ZeroMQ-equivalent bus plus real TCP.

* :class:`MessageBus` -- REQ/REP and PUB/SUB with fabric-modelled delivery
  delays; runs on the simulation engine (virtual or real time).
* :class:`TcpServiceServer` / :class:`TcpServiceClient` -- actual sockets for
  genuinely remote services in examples and integration tests.
"""

from .message import Address, Message, estimate_size
from .bus import ClientSocket, MessageBus, ServerSocket, Subscription
from .tcp import RemoteError, TcpServiceClient, TcpServiceServer

__all__ = [
    "Address",
    "Message",
    "estimate_size",
    "ClientSocket",
    "MessageBus",
    "ServerSocket",
    "Subscription",
    "RemoteError",
    "TcpServiceClient",
    "TcpServiceServer",
]
