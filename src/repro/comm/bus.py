"""The in-process message bus: REQ/REP sockets and PUB/SUB channels.

This is the reproduction's stand-in for RADICAL-Pilot's ZeroMQ communication
infrastructure (§III: "we implement a Service Base Class ... and use the
ZeroMQ communication infrastructure to enable API calls between services and
clients").  The same patterns are provided:

* :class:`ServerSocket` / :class:`ClientSocket` -- REQ/REP request-reply;
* :meth:`MessageBus.publish` / :meth:`MessageBus.subscribe` -- PUB/SUB topics
  (used for state notifications, control commands and heartbeats).

Every delivery is charged the fabric's latency+bandwidth cost between the
endpoints' platforms, so local (intra-platform) and remote (WAN) exchanges
reproduce the paper's 0.063 ms vs 0.47 ms regimes.  Because delays run on
the simulation engine, the bus works unmodified in virtual and real time.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..hpc.network import Fabric
from ..sim.engine import SimulationEngine
from ..sim.events import Event
from ..sim.resources import Store
from ..utils.ids import generate_id
from ..utils.log import get_logger
from .message import Address, Message

__all__ = ["MessageBus", "ServerSocket", "ClientSocket", "Subscription"]

log = get_logger("comm.bus")


class ServerSocket:
    """REP-style socket: an inbox of requests plus a reply primitive."""

    def __init__(self, bus: "MessageBus", address: Address) -> None:
        self.bus = bus
        self.address = address
        self.inbox: Store = Store(bus.engine)

    def recv(self):
        """Return an event yielding the next request :class:`Message`."""
        return self.inbox.get()

    def reply(self, request: Message, payload: Any,
              meta: Optional[Dict[str, Any]] = None) -> None:
        """Send a reply for *request* back to its sender."""
        msg = request.make_reply(payload, sender=self.address, meta=meta)
        self.bus._deliver(msg)

    @property
    def pending(self) -> int:
        """Requests sitting in the inbox (not yet recv'ed)."""
        return len(self.inbox)

    def close(self) -> None:
        self.bus._unbind(self.address.name)


class ClientSocket:
    """REQ-style socket: issues requests, resolves reply events.

    Each socket owns a private reply inbox registered on the bus; a demux
    process pairs incoming replies with outstanding request events via the
    correlation id.
    """

    def __init__(self, bus: "MessageBus", address: Address) -> None:
        self.bus = bus
        self.address = address
        self.inbox: Store = Store(bus.engine)
        self._pending: Dict[int, Event] = {}
        self._corr = itertools.count()
        bus.engine.process(self._demux())

    def _demux(self):
        while True:
            msg = yield self.inbox.get()
            event = self._pending.pop(msg.corr_id, None)
            if event is None:
                log.warning("%s: unmatched reply %r", self.address, msg)
                continue
            event.succeed(msg)

    def request(self, target: Address, payload: Any,
                kind: str = "request") -> Event:
        """Send *payload* to *target*; the returned event yields the reply."""
        corr = next(self._corr)
        msg = Message(kind=kind, payload=payload, sender=self.address,
                      recipient=target, corr_id=corr)
        event = self.bus.engine.event()
        self._pending[corr] = event
        self.bus._deliver(msg)
        return event

    def send(self, target: Address, payload: Any,
             kind: str = "control") -> None:
        """Fire-and-forget send (no reply expected)."""
        msg = Message(kind=kind, payload=payload, sender=self.address,
                      recipient=target, corr_id=None)
        self.bus._deliver(msg)

    def cancel_request(self, event: Event) -> bool:
        """Abandon an outstanding request (e.g. after a client timeout).

        The correlation entry is removed so a late reply is dropped by the
        demux instead of resolving an event nobody waits on.  Returns True
        if the request was still pending.
        """
        for corr, pending in list(self._pending.items()):
            if pending is event:
                del self._pending[corr]
                return True
        return False

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        self.bus._unbind(self.address.name)


class Subscription:
    """A topic subscription: a store of matching published messages."""

    def __init__(self, bus: "MessageBus", topic: str, platform: str) -> None:
        self.bus = bus
        self.topic = topic
        self.platform = platform
        self.inbox: Store = Store(bus.engine)
        self.active = True

    def get(self):
        """Event yielding the next publication on this topic."""
        return self.inbox.get()

    def cancel(self) -> None:
        self.active = False
        self.bus._unsubscribe(self)


class MessageBus:
    """Routes messages between named endpoints with fabric-modelled delays."""

    def __init__(self, engine: SimulationEngine, fabric: Fabric) -> None:
        self.engine = engine
        self.fabric = fabric
        self._endpoints: Dict[str, Tuple[Address, Store]] = {}
        self._subs: Dict[str, List[Subscription]] = {}
        self.delivered_count = 0
        self.dropped_count = 0

    # -- endpoint management -----------------------------------------------------
    def bind(self, name: str, platform: str) -> ServerSocket:
        """Create a server endpoint reachable at *name*."""
        address = self._register(name, platform)
        socket = ServerSocket(self, address)
        self._endpoints[name] = (address, socket.inbox)
        return socket

    def connect(self, platform: str, name: Optional[str] = None) -> ClientSocket:
        """Create a client endpoint hosted on *platform*."""
        name = name or generate_id("client-sock")
        address = self._register(name, platform)
        socket = ClientSocket(self, address)
        self._endpoints[name] = (address, socket.inbox)
        return socket

    def _register(self, name: str, platform: str) -> Address:
        if name in self._endpoints:
            raise ValueError(f"endpoint name {name!r} already bound")
        if platform not in self.fabric.platforms():
            raise KeyError(
                f"platform {platform!r} not registered on the fabric")
        return Address(name=name, platform=platform)

    def _unbind(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def lookup(self, name: str) -> Optional[Address]:
        entry = self._endpoints.get(name)
        return entry[0] if entry else None

    # -- point-to-point delivery ---------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        """Schedule delivery of *msg* after the fabric-sampled delay."""
        if msg.recipient is None:
            raise ValueError(f"message without recipient: {msg!r}")
        entry = self._endpoints.get(msg.recipient.name)
        if entry is None:
            # Recipient disappeared (service terminated): drop, like a ZMQ
            # socket whose peer is gone.
            self.dropped_count += 1
            log.warning("dropping message to unbound endpoint %s",
                        msg.recipient)
            return
        _, inbox = entry
        src = msg.sender.platform if msg.sender else msg.recipient.platform
        dst = msg.recipient.platform
        delay = self.fabric.transfer_time(src, dst, msg.nbytes)
        msg.sent_at = self.engine.now
        # Leaf wait: deliver via the engine's pooled direct-callback path
        # instead of spawning a generator process per message.
        self.engine.call_later(delay, self._land, (msg, inbox))

    def _land(self, flight: Tuple[Message, Store]) -> None:
        msg, inbox = flight
        msg.received_at = self.engine.now
        self.delivered_count += 1
        inbox.put(msg)

    # -- pub/sub -------------------------------------------------------------------
    def subscribe(self, topic: str, platform: str) -> Subscription:
        """Subscribe to *topic*; publications arrive with fabric latency."""
        sub = Subscription(self, topic, platform)
        self._subs.setdefault(topic, []).append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic, [])
        if sub in subs:
            subs.remove(sub)

    def publish(self, topic: str, payload: Any,
                sender: Optional[Address] = None) -> int:
        """Publish to all current subscribers; returns the fan-out count.

        Subscribers whose fabric delay is identical (notably co-located
        ones, and *all* of them for sender-less publishes, which are
        delay-0) share **one** engine hop: the per-subscriber messages are
        grouped by delay and each group lands through a single pooled
        deferred that fans out in subscription order.  A wide same-delay
        fan-out therefore costs one queue entry instead of one per
        subscriber, and delivery order is unchanged -- same-delay entries
        used to land back-to-back in subscription order anyway, and
        distinct delays never shared a timestamp.
        """
        subs = self._subs.get(topic, ())
        if not subs:
            return 0
        subs = list(subs)
        src = sender.platform if sender else None
        now = self.engine.now
        groups: Dict[float, list] = {}
        order: List[float] = []
        for sub in subs:
            msg = Message(kind="pub", payload=payload, sender=sender,
                          topic=topic)
            delay = 0.0
            if src is not None:
                delay = self.fabric.transfer_time(src, sub.platform,
                                                  msg.nbytes)
            msg.sent_at = now
            flights = groups.get(delay)
            if flights is None:
                groups[delay] = flights = []
                order.append(delay)
            flights.append((msg, sub))
        for delay in order:
            flights = groups[delay]
            if len(flights) == 1:
                self.engine.call_later(delay, self._land_pub, flights[0])
            else:
                self.engine.call_later(delay, self._land_pub_batch, flights)
        return len(subs)

    def _land_pub(self, flight: Tuple[Message, Subscription]) -> None:
        msg, sub = flight
        if sub.active:
            msg.received_at = self.engine.now
            self.delivered_count += 1
            sub.inbox.put(msg)

    def _land_pub_batch(self, flights: List[Tuple[Message, Subscription]]) \
            -> None:
        land = self._land_pub
        for flight in flights:
            land(flight)

    # -- RPC convenience -------------------------------------------------------------
    def serve(self, socket: ServerSocket,
              handler: Callable[[Message], Any]) -> "Event":
        """Spawn a trivial server loop: for each request, reply handler(msg).

        Returns the server process (interrupt it to stop serving).  Real
        services (:mod:`repro.core.service`) implement richer loops with
        queueing semantics; this helper is for tests and examples.
        """

        def loop():
            while True:
                msg = yield socket.recv()
                socket.reply(msg, handler(msg))

        return self.engine.process(loop())
