"""ServiceInstance: the running, request-serving side of a service task.

Implements the paper's Service Base Class semantics (§III): a service
exposes a well-defined request/reply API over the communication
infrastructure, is available to receive calls at any time once READY, and --
matching §IV -- handles requests with bounded concurrency (1 for the
Ollama-like host: "services are single-threaded ... queuing further
incoming requests").

Request handling records the timestamps the client needs to decompose
response time exactly as the paper does:

* ``received_at``   -- request hit the service inbox (end of comm leg 1);
* ``dequeued_at``   -- a worker picked it up (queue wait = service component);
* ``infer_start_at``/``infer_stop_at`` -- backend busy window (IT);
* ``replied_at``    -- reply handed to the wire (start of comm leg 2).

Supported operations: ``infer``, ``ping`` (liveness/readiness), ``stop``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..comm.bus import ServerSocket
from ..comm.message import Message, estimate_size
from ..serving.hosts import ServingHost
from ..sim.events import Interrupt, Process
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = ["ServiceInstance"]

log = get_logger("core.service")


class ServiceInstance:
    """Data plane of one service: workers draining the request inbox."""

    def __init__(self, session: "Session", uid: str, socket: ServerSocket,
                 host: ServingHost,
                 heartbeat_interval_s: float = 10.0) -> None:
        self.session = session
        self.uid = uid
        self.socket = socket
        self.host = host
        self.heartbeat_interval_s = heartbeat_interval_s
        self._rng = session.rng(f"service.{uid}")
        self._workers: List[Process] = []
        self._heartbeat: Optional[Process] = None
        self._running = False
        self._active_inferences = 0
        # -- statistics --
        self.requests_handled = 0
        self.busy_time_s = 0.0
        self.max_queue_seen = 0

    # -- lifecycle ----------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the inbox right now."""
        return self.socket.pending

    def start(self) -> None:
        """Spawn worker loops (one per concurrency slot) and heartbeats."""
        if self._running:
            raise RuntimeError(f"{self.uid} already started")
        self._running = True
        for _ in range(self.host.max_concurrency):
            self._workers.append(
                self.session.engine.process(self._worker()))
        self._heartbeat = self.session.engine.process(self._beat())

    def stop(self) -> None:
        """Stop serving: idle workers are interrupted, busy ones finish."""
        if not self._running:
            return
        self._running = False
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt("service stopping")
        self._workers.clear()
        if self._heartbeat is not None and self._heartbeat.is_alive:
            self._heartbeat.interrupt("service stopping")
        self._heartbeat = None
        self.socket.close()

    # -- heartbeats ------------------------------------------------------------------
    def _beat(self):
        engine = self.session.engine
        try:
            while self._running:
                self.session.bus.publish(
                    f"heartbeat.{self.uid}",
                    {"uid": self.uid, "t": engine.now,
                     "queue": self.queue_depth,
                     "handled": self.requests_handled},
                    sender=self.socket.address)
                yield engine.timeout(self.heartbeat_interval_s)
        except Interrupt:
            return

    # -- request handling -------------------------------------------------------------
    def _worker(self):
        engine = self.session.engine
        try:
            while self._running:
                msg: Message = yield self.socket.recv()
                self.max_queue_seen = max(self.max_queue_seen,
                                          self.queue_depth + 1)
                payload = msg.payload or {}
                op = payload.get("op", "infer")
                if op == "ping":
                    self.socket.reply(msg, {"ok": True, "uid": self.uid},
                                      meta=self._stamp(msg, engine.now,
                                                       engine.now))
                    continue
                if op == "stop":
                    self.socket.reply(msg, {"ok": True, "stopped": self.uid})
                    # Stop all workers (including this one).
                    self.stop()
                    return
                if op != "infer":
                    self.socket.reply(
                        msg, {"ok": False, "error": f"unknown op {op!r}"},
                        meta=self._stamp(msg, engine.now, engine.now))
                    continue
                yield from self._handle_inference(msg)
        except Interrupt:
            return

    def _handle_inference(self, msg: Message):
        engine = self.session.engine
        dequeued_at = engine.now
        # Parse/deserialise the request.
        parse_s = self.host.parse_time(msg.nbytes, self._rng)
        if parse_s > 0:
            yield engine.timeout(parse_s)
        prompt = (msg.payload or {}).get("prompt", "")
        params = (msg.payload or {}).get("params") or {}

        infer_start_at = engine.now
        self._active_inferences += 1
        try:
            result, duration = self.host.infer(
                prompt, self._rng, params, n_active=self._active_inferences)
            if duration > 0:
                yield engine.timeout(duration)
        finally:
            self._active_inferences -= 1
        infer_stop_at = engine.now

        reply_payload = {
            "ok": True,
            "text": result.text,
            "model": result.model,
            "prompt_tokens": result.prompt_tokens,
            "completion_tokens": result.completion_tokens,
        }
        serialize_s = self.host.serialize_time(
            estimate_size(reply_payload), self._rng)
        if serialize_s > 0:
            yield engine.timeout(serialize_s)

        self.requests_handled += 1
        self.busy_time_s += engine.now - dequeued_at
        self.socket.reply(
            msg, reply_payload,
            meta=self._stamp(msg, infer_start_at, infer_stop_at,
                             dequeued_at=dequeued_at))

    def _stamp(self, msg: Message, infer_start_at: float,
               infer_stop_at: float,
               dequeued_at: Optional[float] = None) -> Dict[str, Any]:
        """Reply metadata carrying the RT-decomposition timestamps."""
        now = self.session.engine.now
        return {
            "received_at": msg.received_at,
            "dequeued_at": dequeued_at if dequeued_at is not None else now,
            "infer_start_at": infer_start_at,
            "infer_stop_at": infer_stop_at,
            "replied_at": now,
            "service_uid": self.uid,
        }
