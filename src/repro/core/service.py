"""ServiceInstance: the running, request-serving side of a service task.

Implements the paper's Service Base Class semantics (§III) extended into an
adaptive data plane.  The paper's baseline -- "services are single-threaded
... queuing further incoming requests" (§IV) with an unbounded inbox -- is
the degenerate configuration (one worker, batch size 1, no queue bound).
Beyond it the instance supports:

* **continuous batching** -- each worker dispatch coalesces up to
  ``host.max_batch_size`` queued requests into one backend call, whose cost
  model (:meth:`~repro.serving.hosts.ServingHost.infer_batch`) scales
  sub-linearly in batch size;
* **bounded admission** -- an admission loop moves inbox messages into an
  internal queue bounded at ``max_queue_depth``; overflowing requests are
  *shed* with an immediate, typed ``busy`` reply instead of queueing
  forever (clients retry with backoff, see
  :class:`~repro.core.client.ServiceClient`);
* **load telemetry** -- queue depth, in-flight count and an EWMA of the
  marginal per-request service time are published on every heartbeat (both
  on the per-instance topic and the shared
  :data:`~repro.comm.message.TELEMETRY_TOPIC` the registry ingests);
* **draining** -- an orderly stop finishes admitted requests while
  shedding new arrivals, so autoscaling down never drops in-flight work.

Request handling records the timestamps the client needs to decompose
response time exactly as the paper does:

* ``received_at``   -- request hit the service inbox (end of comm leg 1);
* ``dequeued_at``   -- a worker picked it up (queue wait = service component);
* ``infer_start_at``/``infer_stop_at`` -- backend busy window (IT);
* ``replied_at``    -- reply handed to the wire (start of comm leg 2).

Supported operations: ``infer``, ``ping`` (liveness/readiness), ``stop``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..comm.bus import ServerSocket
from ..comm.message import TELEMETRY_TOPIC, LoadReport, Message, estimate_size
from ..serving.hosts import ServingHost
from ..sim.events import Interrupt, Process
from ..sim.resources import Store
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = ["ServiceInstance"]

log = get_logger("core.service")

#: EWMA smoothing factor for the marginal per-request service time.
EWMA_ALPHA = 0.25

#: Poll interval while draining admitted work during an orderly stop.
DRAIN_POLL_S = 0.1


class ServiceInstance:
    """Data plane of one service: admission control + batching workers."""

    def __init__(self, session: "Session", uid: str, socket: ServerSocket,
                 host: ServingHost,
                 heartbeat_interval_s: float = 10.0,
                 max_queue_depth: int = 0) -> None:
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0 (0 = unbounded)")
        self.session = session
        self.uid = uid
        self.socket = socket
        self.host = host
        self.heartbeat_interval_s = heartbeat_interval_s
        #: admitted-queue bound; 0 means unbounded (the paper's baseline)
        self.max_queue_depth = max_queue_depth
        self._rng = session.rng(f"service.{uid}")
        self._queue: Store = Store(session.engine)
        self._admission: Optional[Process] = None
        self._workers: List[Process] = []
        self._heartbeat: Optional[Process] = None
        self._running = False
        self._draining = False
        self._active_dispatches = 0
        self._in_flight = 0
        # -- statistics --
        self.requests_handled = 0
        self.batches_handled = 0
        self.shed_count = 0
        self.busy_time_s = 0.0
        self.max_queue_seen = 0
        self.ewma_service_s = 0.0
        obs = session.observability
        self._obs_metrics = obs.metrics if obs is not None else None
        if self._obs_metrics is not None:
            self._obs_batch_hist = self._obs_metrics.histogram(
                "service_batch_size", {"service": uid},
                buckets=(1, 2, 4, 8, 16, 32, 64, 128))
            depth_gauge = self._obs_metrics.gauge(
                "service_queue_depth", {"service": uid})
            self._obs_metrics.add_poll(
                lambda: depth_gauge.set(self.queue_depth))

    # -- lifecycle ----------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        """Requests admitted and waiting for a worker (plus unread inbox)."""
        return len(self._queue) + self.socket.pending

    @property
    def in_flight(self) -> int:
        """Requests currently being processed by workers."""
        return self._in_flight

    def start(self) -> None:
        """Spawn admission, worker loops (one per slot) and heartbeats."""
        if self._running:
            raise RuntimeError(f"{self.uid} already started")
        self._running = True
        engine = self.session.engine
        self._admission = engine.process(self._admit())
        for _ in range(self.host.max_concurrency):
            self._workers.append(engine.process(self._worker()))
        self._heartbeat = engine.process(self._beat())

    def stop(self) -> None:
        """Stop serving immediately: all loops are interrupted.

        Admitted-but-unserved requests are dropped (their clients see a
        timeout, like a crashed server).  For an orderly shutdown run
        :meth:`drain` first.
        """
        if not self._running:
            return
        self._running = False
        if self._admission is not None and self._admission.is_alive:
            self._admission.interrupt("service stopping")
        self._admission = None
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt("service stopping")
        self._workers.clear()
        if self._heartbeat is not None and self._heartbeat.is_alive:
            self._heartbeat.interrupt("service stopping")
        self._heartbeat = None
        self.socket.close()

    def drain(self):
        """Process body: shed new work, wait for admitted work to finish.

        Use as ``yield from instance.drain()`` before :meth:`stop` for a
        graceful shutdown (every admitted request still gets its reply).
        """
        engine = self.session.engine
        self._draining = True
        while self._running and (len(self._queue) or self._in_flight):
            yield engine.timeout(DRAIN_POLL_S)

    # -- telemetry ------------------------------------------------------------------
    def load_report(self) -> LoadReport:
        """Snapshot of this instance's load for heartbeats/registry."""
        return LoadReport(
            uid=self.uid,
            t=self.session.engine.now,
            queue_depth=len(self._queue),
            in_flight=self._in_flight,
            ewma_service_s=self.ewma_service_s,
            handled=self.requests_handled,
            shed=self.shed_count,
            workers=self.host.max_concurrency,
            max_batch_size=self.host.max_batch_size,
            queue_bound=self.max_queue_depth,
        )

    def _beat(self):
        engine = self.session.engine
        try:
            while self._running:
                report = self.load_report()
                # Legacy liveness keys plus the full report; the remaining
                # telemetry fields live in the report, not flattened copies.
                payload = {
                    "uid": self.uid, "t": engine.now,
                    "queue": report.queue_depth,
                    "handled": report.handled,
                    "load": report,
                }
                self.session.bus.publish(f"heartbeat.{self.uid}", payload,
                                         sender=self.socket.address)
                self.session.bus.publish(TELEMETRY_TOPIC, report,
                                         sender=self.socket.address)
                yield engine.timeout(self.heartbeat_interval_s)
        except Interrupt:
            return

    # -- admission ------------------------------------------------------------------
    def _admit(self):
        """Move inbox messages into the bounded internal queue.

        Control operations (``ping``/``stop``) are handled inline so
        liveness probes never wait behind queued inference work.  Inference
        requests beyond ``max_queue_depth`` are shed with a ``busy`` reply.
        """
        engine = self.session.engine
        try:
            while self._running:
                msg: Message = yield self.socket.recv()
                payload = msg.payload or {}
                op = payload.get("op", "infer")
                if op == "ping":
                    self.socket.reply(msg, {"ok": True, "uid": self.uid},
                                      meta=self._stamp(msg, engine.now,
                                                       engine.now))
                    continue
                if op == "stop":
                    self.socket.reply(msg, {"ok": True, "stopped": self.uid})
                    self.stop()
                    return
                if op != "infer":
                    self.socket.reply(
                        msg, {"ok": False, "error": f"unknown op {op!r}"},
                        meta=self._stamp(msg, engine.now, engine.now))
                    continue
                if self._draining or (
                        self.max_queue_depth
                        and len(self._queue) >= self.max_queue_depth):
                    self._shed(msg)
                    continue
                self._queue.put(msg)
                self.max_queue_seen = max(self.max_queue_seen,
                                          len(self._queue))
        except Interrupt:
            return

    def _shed(self, msg: Message) -> None:
        """Reject *msg* with a typed busy reply (no queueing)."""
        now = self.session.engine.now
        self.shed_count += 1
        self.socket.reply(
            msg,
            {"ok": False, "busy": True, "error": "busy",
             "queue_depth": len(self._queue),
             "queue_bound": self.max_queue_depth},
            meta=self._stamp(msg, now, now))

    # -- request handling -------------------------------------------------------------
    def _worker(self):
        try:
            while self._running:
                first: Message = yield self._queue.get()
                batch = [first]
                # Coalesce whatever else is already queued, up to the batch
                # limit.  Items present in the store imply no other getter is
                # waiting, so draining them directly is race-free.
                while (len(batch) < self.host.max_batch_size
                       and len(self._queue)):
                    batch.append(self._queue.items.popleft())
                yield from self._handle_batch(batch)
        except Interrupt:
            return

    def _handle_batch(self, batch: List[Message]):
        engine = self.session.engine
        dequeued_at = engine.now
        self._in_flight += len(batch)
        self._active_dispatches += 1
        try:
            # Parse/deserialise the coalesced requests (vectorised decode:
            # one dispatch overhead plus the per-byte cost of every message).
            parse_s = self.host.parse_time(
                sum(m.nbytes for m in batch), self._rng)
            if parse_s > 0:
                yield engine.timeout(parse_s)
            prompts = [(m.payload or {}).get("prompt", "") for m in batch]
            params_list = [(m.payload or {}).get("params") or {}
                           for m in batch]

            infer_start_at = engine.now
            results, duration = self.host.infer_batch(
                prompts, self._rng, params_list,
                n_active=self._active_dispatches)
            if duration > 0:
                yield engine.timeout(duration)
            infer_stop_at = engine.now

            reply_payloads = [{
                "ok": True,
                "text": result.text,
                "model": result.model,
                "prompt_tokens": result.prompt_tokens,
                "completion_tokens": result.completion_tokens,
            } for result in results]
            serialize_s = self.host.serialize_time(
                sum(estimate_size(p) for p in reply_payloads), self._rng)
            if serialize_s > 0:
                yield engine.timeout(serialize_s)

            span = engine.now - dequeued_at
            self.requests_handled += len(batch)
            self.batches_handled += 1
            if self._obs_metrics is not None:
                self._obs_batch_hist.observe(len(batch))
            self.busy_time_s += span
            self._update_ewma(span / len(batch))
            for msg, reply_payload in zip(batch, reply_payloads):
                self.socket.reply(
                    msg, reply_payload,
                    meta=self._stamp(msg, infer_start_at, infer_stop_at,
                                     dequeued_at=dequeued_at,
                                     batch_size=len(batch)))
        finally:
            self._in_flight -= len(batch)
            self._active_dispatches -= 1

    def _update_ewma(self, marginal_s: float) -> None:
        if self.ewma_service_s == 0.0:
            self.ewma_service_s = marginal_s
        else:
            self.ewma_service_s = (EWMA_ALPHA * marginal_s
                                   + (1.0 - EWMA_ALPHA) * self.ewma_service_s)

    def _stamp(self, msg: Message, infer_start_at: float,
               infer_stop_at: float,
               dequeued_at: Optional[float] = None,
               batch_size: int = 1) -> Dict[str, Any]:
        """Reply metadata carrying the RT-decomposition timestamps."""
        now = self.session.engine.now
        return {
            "received_at": msg.received_at,
            "dequeued_at": dequeued_at if dequeued_at is not None else now,
            "infer_start_at": infer_start_at,
            "infer_stop_at": infer_stop_at,
            "replied_at": now,
            "service_uid": self.uid,
            "batch_size": batch_size,
        }
