"""Load-balancing policies for distributing requests over service instances.

The paper employs "only a rudimentary load balancing" (§IV-E) -- i.e.
round-robin -- and names dynamic rerouting "to less used service instances"
as future work.  Both are implemented here (plus a random baseline), and
two telemetry-aware policies consume the load reports service instances
publish to the :class:`~repro.core.registry.EndpointRegistry` on every
heartbeat:

* :class:`LeastLoadedBalancer` -- fewest in-flight requests.  Without a
  registry it counts only requests *this* balancer routed (the client-local
  approximation); with a registry it adds the published fleet-wide backlog,
  making it a true least-loaded policy under many independent clients.
* :class:`JoinShortestQueueBalancer` -- classic JSQ on the published queue
  depth, normalised by instance capacity so a batching instance with four
  queued requests beats a serial one with two.

Published telemetry is heartbeat-periodic and therefore *stale*; both
policies add the balancer-local in-flight count as an optimistic correction
for requests sent since the last report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..comm.message import Address

if TYPE_CHECKING:  # pragma: no cover
    from .registry import EndpointRegistry

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "RandomBalancer",
    "LeastLoadedBalancer",
    "JoinShortestQueueBalancer",
    "create_balancer",
]


class LoadBalancer:
    """Base policy: pick a target; observe request start/completion."""

    name = "base"

    def pick(self, targets: Sequence[Address]) -> Address:
        raise NotImplementedError

    def record_start(self, target: Address) -> None:
        """A request to *target* is now in flight."""

    def record_done(self, target: Address) -> None:
        """A request to *target* completed."""


class RoundRobinBalancer(LoadBalancer):
    """The paper's rudimentary policy: cycle through instances."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, targets: Sequence[Address]) -> Address:
        if not targets:
            raise ValueError("no targets")
        target = targets[self._next % len(targets)]
        self._next += 1
        return target


class RandomBalancer(LoadBalancer):
    """Uniform random selection."""

    name = "random"

    def __init__(self, rng) -> None:
        self._rng = rng

    def pick(self, targets: Sequence[Address]) -> Address:
        if not targets:
            raise ValueError("no targets")
        return targets[int(self._rng.integers(len(targets)))]


class _ScoredBalancer(LoadBalancer):
    """Shared machinery: pick the minimum-score target, ties round-robin."""

    def __init__(self) -> None:
        self._in_flight: Dict[Address, int] = {}
        self._next = 0

    def _score(self, target: Address) -> float:
        raise NotImplementedError

    def pick(self, targets: Sequence[Address]) -> Address:
        if not targets:
            raise ValueError("no targets")
        scores = [(self._score(t), i) for i, t in enumerate(targets)]
        best = min(score for score, _ in scores)
        candidates = [i for score, i in scores if score == best]
        choice = candidates[self._next % len(candidates)]
        self._next += 1
        return targets[choice]

    def record_start(self, target: Address) -> None:
        self._in_flight[target] = self._in_flight.get(target, 0) + 1

    def record_done(self, target: Address) -> None:
        current = self._in_flight.get(target, 0)
        self._in_flight[target] = max(0, current - 1)

    def load_of(self, target: Address) -> int:
        return self._in_flight.get(target, 0)


class LeastLoadedBalancer(_ScoredBalancer):
    """Route to the instance with the fewest in-flight requests.

    Without *registry*, only locally-routed requests count (the seed
    behaviour).  With *registry*, the published fleet-wide backlog is added,
    so load caused by *other* clients is seen too.
    """

    name = "least-loaded"

    def __init__(self, registry: Optional["EndpointRegistry"] = None) -> None:
        super().__init__()
        self.registry = registry

    def _score(self, target: Address) -> float:
        score = float(self._in_flight.get(target, 0))
        if self.registry is not None:
            report = self.registry.load_for(target)
            if report is not None:
                score += report.backlog
        return score


class JoinShortestQueueBalancer(_ScoredBalancer):
    """JSQ over published telemetry, capacity-normalised.

    The score is the estimated wait in *dispatch rounds*: published backlog
    plus locally-unreported sends, divided by the instance's concurrent
    capacity (workers x batch size).  Instances without telemetry yet score
    by local in-flight only, so cold fleets degrade to least-loaded.
    """

    name = "join-shortest-queue"

    def __init__(self, registry: "EndpointRegistry") -> None:
        super().__init__()
        if registry is None:
            raise ValueError("JoinShortestQueueBalancer needs a registry")
        self.registry = registry

    def _score(self, target: Address) -> float:
        local = self._in_flight.get(target, 0)
        report = self.registry.load_for(target)
        if report is None:
            return float(local)
        return (report.backlog + local) / max(1, report.capacity)


def create_balancer(name: str, rng=None, registry=None) -> LoadBalancer:
    """Factory by policy name."""
    if name == "round-robin":
        return RoundRobinBalancer()
    if name == "random":
        if rng is None:
            raise ValueError("random balancer needs an rng")
        return RandomBalancer(rng)
    if name == "least-loaded":
        return LeastLoadedBalancer(registry=registry)
    if name == "join-shortest-queue":
        if registry is None:
            raise ValueError("join-shortest-queue needs a registry")
        return JoinShortestQueueBalancer(registry)
    raise KeyError(f"unknown balancer {name!r}")
