"""Load-balancing policies for distributing requests over service instances.

The paper employs "only a rudimentary load balancing" (§IV-E) -- i.e.
round-robin -- and names dynamic rerouting "to less used service instances"
as future work.  Both are implemented here (plus a random baseline) and
compared by the load-balancer ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..comm.message import Address

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "RandomBalancer",
    "LeastLoadedBalancer",
    "create_balancer",
]


class LoadBalancer:
    """Base policy: pick a target; observe request start/completion."""

    name = "base"

    def pick(self, targets: Sequence[Address]) -> Address:
        raise NotImplementedError

    def record_start(self, target: Address) -> None:
        """A request to *target* is now in flight."""

    def record_done(self, target: Address) -> None:
        """A request to *target* completed."""


class RoundRobinBalancer(LoadBalancer):
    """The paper's rudimentary policy: cycle through instances."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, targets: Sequence[Address]) -> Address:
        if not targets:
            raise ValueError("no targets")
        target = targets[self._next % len(targets)]
        self._next += 1
        return target


class RandomBalancer(LoadBalancer):
    """Uniform random selection."""

    name = "random"

    def __init__(self, rng) -> None:
        self._rng = rng

    def pick(self, targets: Sequence[Address]) -> Address:
        if not targets:
            raise ValueError("no targets")
        return targets[int(self._rng.integers(len(targets)))]


class LeastLoadedBalancer(LoadBalancer):
    """Future-work policy: route to the instance with fewest in-flight
    requests (ties broken round-robin)."""

    name = "least-loaded"

    def __init__(self) -> None:
        self._in_flight: Dict[Address, int] = {}
        self._next = 0

    def pick(self, targets: Sequence[Address]) -> Address:
        if not targets:
            raise ValueError("no targets")
        loads = [(self._in_flight.get(t, 0), i) for i, t in enumerate(targets)]
        min_load = min(load for load, _ in loads)
        candidates = [i for load, i in loads if load == min_load]
        choice = candidates[self._next % len(candidates)]
        self._next += 1
        return targets[choice]

    def record_start(self, target: Address) -> None:
        self._in_flight[target] = self._in_flight.get(target, 0) + 1

    def record_done(self, target: Address) -> None:
        current = self._in_flight.get(target, 0)
        self._in_flight[target] = max(0, current - 1)

    def load_of(self, target: Address) -> int:
        return self._in_flight.get(target, 0)


def create_balancer(name: str, rng=None) -> LoadBalancer:
    """Factory by policy name."""
    if name == "round-robin":
        return RoundRobinBalancer()
    if name == "random":
        if rng is None:
            raise ValueError("random balancer needs an rng")
        return RandomBalancer(rng)
    if name == "least-loaded":
        return LeastLoadedBalancer()
    raise KeyError(f"unknown balancer {name!r}")
