"""Autoscaler: elastic service-instance counts driven by load telemetry.

The paper's runtime fixes the number of service instances at submission
time and names elasticity as future work (§IV-E).  The
:class:`Autoscaler` closes that loop: a control process in the
ServiceManager watches the fleet's :class:`~repro.comm.message.LoadReport`
telemetry in the :class:`~repro.core.registry.EndpointRegistry` and
starts/stops instances to hold the estimated queueing delay under a target
SLO:

* **scale up** when the fleet-mean estimated queue delay
  (``queue_depth * ewma_service_s / workers``) stays above
  ``target_queue_delay_s`` for ``up_ticks`` consecutive evaluations --
  bootstrapping instances count against ``max_instances`` so a slow model
  load does not trigger a launch storm;
* **scale down** when the fleet is below ``low_queue_delay_s`` with zero
  backlog for ``down_ticks`` evaluations -- the least-loaded instance is
  stopped (the ServiceManager drains it first, so admitted requests still
  complete) and its endpoint deregisters before the drain, steering
  registry-reading balancers away.

Scaling actions are recorded in :attr:`Autoscaler.scale_events` and the
instance-count time series in :attr:`Autoscaler.count_trace`, which the
scaling-study benchmark plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..pilot.description import ServiceDescription
from ..pilot.states import ServiceState
from ..sim.events import Interrupt, Process
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.task import Pilot
    from .service_manager import ServiceHandle, ServiceManager

__all__ = ["AutoscalerConfig", "Autoscaler"]

log = get_logger("core.autoscaler")


@dataclass
class AutoscalerConfig:
    """Scaling policy knobs (all times in simulated seconds)."""

    target_queue_delay_s: float = 2.0   # SLO: scale up above this
    low_queue_delay_s: Optional[float] = None  # default: target / 4
    interval_s: float = 5.0             # evaluation cadence
    min_instances: int = 1
    max_instances: int = 8
    up_ticks: int = 2                   # consecutive breaches before up
    down_ticks: int = 4                 # consecutive idles before down

    def __post_init__(self) -> None:
        if self.target_queue_delay_s <= 0:
            raise ValueError("target_queue_delay_s must be positive")
        if self.low_queue_delay_s is None:
            self.low_queue_delay_s = self.target_queue_delay_s / 4.0
        if not 0 <= self.low_queue_delay_s < self.target_queue_delay_s:
            raise ValueError(
                "low_queue_delay_s must be in [0, target_queue_delay_s)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        if self.max_instances < self.min_instances:
            raise ValueError("max_instances must be >= min_instances")
        if self.up_ticks < 1 or self.down_ticks < 1:
            raise ValueError("up_ticks and down_ticks must be >= 1")


class Autoscaler:
    """Grows and shrinks one service group against queue-delay SLOs."""

    def __init__(self, smgr: "ServiceManager",
                 description: ServiceDescription,
                 pilot: Optional["Pilot"] = None,
                 remote_platform: Optional[str] = None,
                 config: Optional[AutoscalerConfig] = None,
                 handles: Optional[List["ServiceHandle"]] = None) -> None:
        if (pilot is None) == (remote_platform is None):
            raise ValueError(
                "exactly one of pilot / remote_platform is required")
        self.smgr = smgr
        self.description = description
        self.pilot = pilot
        self.remote_platform = remote_platform
        self.config = config or AutoscalerConfig()
        self.handles: List["ServiceHandle"] = list(handles or [])
        #: handles scaled down or failed out of the group (kept so
        #: fleet-wide statistics survive instance churn)
        self.retired: List["ServiceHandle"] = []
        #: (time, "up"|"down", instance count after the action)
        self.scale_events: List[Tuple[float, str, int]] = []
        #: (time, instance count) sampled every evaluation tick
        self.count_trace: List[Tuple[float, int]] = []
        self._up_streak = 0
        self._down_streak = 0
        self._running = False
        self._proc: Optional[Process] = None

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "Autoscaler":
        """Spawn the control loop (ensuring the min instance count)."""
        if self._running:
            raise RuntimeError("autoscaler already started")
        self._running = True
        while len(self._live()) < self.config.min_instances:
            self._launch_one()
        self._proc = self.smgr.session.engine.process(self._loop())
        return self

    def stop(self) -> None:
        """Stop the control loop (instances keep running)."""
        if not self._running:
            return
        self._running = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopping")
        self._proc = None

    # -- introspection ------------------------------------------------------------
    @property
    def n_instances(self) -> int:
        """Live (bootstrapping or ready) instances under management."""
        return len(self._live())

    def targets(self):
        """Addresses of READY managed instances (for client workloads)."""
        return [h.address for h in self.handles
                if h.is_ready and h.address is not None]

    @property
    def all_handles(self) -> List["ServiceHandle"]:
        """Every handle ever managed (live plus retired/failed)."""
        return self.handles + self.retired

    def _live(self) -> List["ServiceHandle"]:
        live = [h for h in self.handles
                if h.service_state not in (ServiceState.FAILED,
                                           ServiceState.STOPPED,
                                           ServiceState.STOPPING)]
        failed = [h for h in self.handles
                  if h.service_state == ServiceState.FAILED]
        if failed:
            self.retired.extend(failed)
            self.handles = [h for h in self.handles
                            if h.service_state != ServiceState.FAILED]
        return live

    # -- control loop -------------------------------------------------------------
    def _loop(self):
        engine = self.smgr.session.engine
        cfg = self.config
        try:
            while self._running:
                yield engine.timeout(cfg.interval_s)
                self._evaluate()
                self.count_trace.append((engine.now, len(self._live())))
        except Interrupt:
            return

    def _evaluate(self) -> None:
        cfg = self.config
        live = self._live()
        ready = [h for h in live if h.is_ready]
        reports = [self.smgr.registry.load_of(h.uid) for h in ready]
        reports = [r for r in reports if r is not None]
        if not reports:
            # No telemetry yet (fleet still bootstrapping): do nothing.
            self._up_streak = self._down_streak = 0
            return

        delays = [r.est_queue_delay_s for r in reports]
        mean_delay = sum(delays) / len(delays)
        backlog = sum(r.backlog for r in reports)

        if mean_delay > cfg.target_queue_delay_s:
            self._up_streak += 1
            self._down_streak = 0
        elif max(delays) < cfg.low_queue_delay_s and backlog == 0:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = self._down_streak = 0

        now = self.smgr.session.engine.now
        if self._up_streak >= cfg.up_ticks and len(live) < cfg.max_instances:
            self._launch_one()
            self._up_streak = 0
            self.scale_events.append((now, "up", len(self._live())))
            log.info("t=%.1fs scale up -> %d instances (delay %.2fs)",
                     now, len(self._live()), mean_delay)
        elif (self._down_streak >= cfg.down_ticks
              and len(ready) > 0 and len(live) > cfg.min_instances):
            victim = self._pick_victim(ready)
            self.smgr.stop_services(victim)
            self.handles.remove(victim)
            self.retired.append(victim)
            self._down_streak = 0
            self.scale_events.append((now, "down", len(self._live())))
            log.info("t=%.1fs scale down -> %d instances",
                     now, len(self._live()))

    def _launch_one(self) -> "ServiceHandle":
        desc = self.description.copy()
        desc.endpoint_name = ""  # each instance needs a unique endpoint
        if self.pilot is not None:
            (handle,) = self.smgr.start_services(desc, self.pilot)
        else:
            handle = self.smgr.start_remote(desc, self.remote_platform)
        self.handles.append(handle)
        return handle

    def _pick_victim(self, ready: List["ServiceHandle"]) -> "ServiceHandle":
        """Stop the instance with the smallest published backlog."""
        def backlog(handle: "ServiceHandle") -> int:
            report = self.smgr.registry.load_of(handle.uid)
            return report.backlog if report is not None else 0
        return min(ready, key=backlog)
