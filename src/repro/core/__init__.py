"""The paper's primary contribution: service-oriented runtime extensions.

Extends the pilot runtime with service management (launch/init/publish/ready
lifecycle, heartbeat liveness, priority scheduling), an endpoint registry
with fleet load telemetry, request clients with RT decomposition and
retry-on-busy, load-balancing policies, and an autoscaler that grows and
shrinks service groups against queue-delay SLOs -- the architecture of
Fig. 2 plus the paper's §IV-E future work (continuous batching, bounded
admission, dynamic rerouting, elasticity).
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .client import InferenceResult, RequestTimeout, ServiceClient
from .load_balancer import (
    JoinShortestQueueBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    create_balancer,
)
from .registry import EndpointRegistry, ServiceInfo
from .service import ServiceInstance
from .service_manager import ServiceHandle, ServiceManager

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "InferenceResult",
    "RequestTimeout",
    "ServiceClient",
    "JoinShortestQueueBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "create_balancer",
    "EndpointRegistry",
    "ServiceInfo",
    "ServiceInstance",
    "ServiceHandle",
    "ServiceManager",
]
