"""The paper's primary contribution: service-oriented runtime extensions.

Extends the pilot runtime with service management (launch/init/publish/ready
lifecycle, heartbeat liveness, priority scheduling), an endpoint registry,
request clients with RT decomposition and load-balancing policies -- the
architecture of Fig. 2.
"""

from .client import InferenceResult, ServiceClient
from .load_balancer import (
    LeastLoadedBalancer,
    LoadBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    create_balancer,
)
from .registry import EndpointRegistry, ServiceInfo
from .service import ServiceInstance
from .service_manager import ServiceHandle, ServiceManager

__all__ = [
    "InferenceResult",
    "ServiceClient",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "create_balancer",
    "EndpointRegistry",
    "ServiceInfo",
    "ServiceInstance",
    "ServiceHandle",
    "ServiceManager",
]
