"""ServiceClient: issues inference requests and decomposes response time.

Reproduces the paper's measurement methodology (§IV): for every request the
client records the total response time (RT) and splits it into

* ``communication`` -- both network legs: RT minus the server-resident span;
* ``service``       -- server-side queueing + parse + serialise;
* ``inference``     -- backend busy window (IT).

Results accumulate on the client and feed :mod:`repro.analytics.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

from ..comm.message import Address, Message
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session
    from .load_balancer import LoadBalancer

__all__ = ["InferenceResult", "ServiceClient"]

log = get_logger("core.client")


@dataclass
class InferenceResult:
    """Timing decomposition and payload of one request/reply exchange."""

    client_uid: str
    service_uid: str
    ok: bool
    submitted_at: float
    completed_at: float
    response_time: float          # RT: total round trip
    communication: float          # both wire legs
    service_time: float           # queue + parse + serialize (server side)
    inference_time: float         # backend busy window (IT)
    queue_time: float             # part of service_time spent waiting
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return self.payload.get("text", "")


class ServiceClient:
    """A client task issuing requests to service endpoints."""

    def __init__(self, session: "Session", platform: str,
                 uid: Optional[str] = None) -> None:
        self.session = session
        self.uid = uid or session.ids.generate("client")
        self.platform = platform
        self.socket = session.bus.connect(platform, name=f"{self.uid}.sock")
        self.results: List[InferenceResult] = []

    # -- single request -------------------------------------------------------------
    def infer(self, target: Address, prompt: str,
              params: Optional[Dict[str, Any]] = None):
        """Process body: one request/reply; returns :class:`InferenceResult`.

        Use as ``result = yield from client.infer(addr, "...")`` inside a
        simulation process.
        """
        engine = self.session.engine
        t0 = engine.now
        reply: Message = yield self.socket.request(
            target, {"op": "infer", "prompt": prompt, "params": params or {}})
        t1 = engine.now
        result = self._decompose(reply, t0, t1)
        self.results.append(result)
        return result

    def ping(self, target: Address):
        """Process body: liveness probe; returns round-trip seconds."""
        engine = self.session.engine
        t0 = engine.now
        yield self.socket.request(target, {"op": "ping"})
        return engine.now - t0

    def _decompose(self, reply: Message, t0: float,
                   t1: float) -> InferenceResult:
        meta = reply.meta
        payload = reply.payload or {}
        received = meta.get("received_at", t1)
        dequeued = meta.get("dequeued_at", received)
        infer_start = meta.get("infer_start_at", dequeued)
        infer_stop = meta.get("infer_stop_at", infer_start)
        replied = meta.get("replied_at", infer_stop)
        rt = t1 - t0
        server_span = replied - received
        inference = infer_stop - infer_start
        service_time = server_span - inference
        return InferenceResult(
            client_uid=self.uid,
            service_uid=meta.get("service_uid", "?"),
            ok=bool(payload.get("ok", False)),
            submitted_at=t0,
            completed_at=t1,
            response_time=rt,
            communication=rt - server_span,
            service_time=service_time,
            inference_time=inference,
            queue_time=dequeued - received,
            payload=payload,
        )

    # -- request streams --------------------------------------------------------------
    def run_workload(self, targets: Sequence[Address], n_requests: int,
                     prompt: str = "noop",
                     params: Optional[Dict[str, Any]] = None,
                     balancer: Optional["LoadBalancer"] = None):
        """Process body: issue *n_requests* sequentially (the paper's client).

        Each client sends a fixed number of requests (1024 in Exp 2/3) one
        after another; the target for each request comes from the load
        balancer (round-robin by default over *targets*).
        Returns the list of results.
        """
        from .load_balancer import RoundRobinBalancer  # avoid cycle

        if not targets:
            raise ValueError("run_workload needs at least one target")
        balancer = balancer or RoundRobinBalancer()
        mine: List[InferenceResult] = []
        for _ in range(n_requests):
            target = balancer.pick(targets)
            balancer.record_start(target)
            try:
                result = yield from self.infer(target, prompt, params)
            finally:
                balancer.record_done(target)
            mine.append(result)
        return mine

    # -- stats ------------------------------------------------------------------------
    def mean_rt(self) -> float:
        if not self.results:
            return float("nan")
        return sum(r.response_time for r in self.results) / len(self.results)

    def clear(self) -> None:
        self.results.clear()
