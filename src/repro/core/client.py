"""ServiceClient: issues inference requests and decomposes response time.

Reproduces the paper's measurement methodology (§IV): for every request the
client records the total response time (RT) and splits it into

* ``communication`` -- both network legs: RT minus the server-resident span;
* ``service``       -- server-side queueing + parse + serialise;
* ``inference``     -- backend busy window (IT).

On top of the paper's baseline the client understands the adaptive data
plane's admission control: a service whose bounded queue is full replies
``busy`` instead of queueing forever, and the client retries with jittered
exponential backoff (re-picking the target when a load balancer is in
play).  An optional per-request timeout bounds the wait on a dead or
drained instance; timed-out requests are retried like busy ones.  Load
balancer in-flight accounting is maintained around every attempt, so no
exit path (reply, busy, timeout, interrupt) leaks a ``record_start``.

Results accumulate on the client and feed :mod:`repro.analytics.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from ..comm.message import Address, Message
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session
    from .load_balancer import LoadBalancer

__all__ = ["InferenceResult", "RequestTimeout", "ServiceClient"]

log = get_logger("core.client")


class RequestTimeout(Exception):
    """A request got no reply within the client's timeout (after retries)."""


@dataclass
class InferenceResult:
    """Timing decomposition and payload of one request/reply exchange."""

    client_uid: str
    service_uid: str
    ok: bool
    submitted_at: float
    completed_at: float
    response_time: float          # RT: total round trip
    communication: float          # both wire legs
    service_time: float           # queue + parse + serialize (server side)
    inference_time: float         # backend busy window (IT)
    queue_time: float             # part of service_time spent waiting
    payload: Dict[str, Any] = field(default_factory=dict)
    retries: int = 0              # busy/timeout retries before this reply

    @property
    def text(self) -> str:
        return self.payload.get("text", "")

    @property
    def busy(self) -> bool:
        """True when the final reply was an admission-control rejection."""
        return bool(self.payload.get("busy", False))


class ServiceClient:
    """A client task issuing requests to service endpoints."""

    def __init__(self, session: "Session", platform: str,
                 uid: Optional[str] = None,
                 max_retries: int = 6,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 5.0,
                 timeout_s: Optional[float] = None) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base_s <= 0 or backoff_cap_s <= 0:
            raise ValueError("backoff parameters must be positive")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.session = session
        self.uid = uid or session.ids.generate("client")
        self.platform = platform
        self.socket = session.bus.connect(platform, name=f"{self.uid}.sock")
        self.results: List[InferenceResult] = []
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self._rng = session.rng(f"client.{self.uid}")
        # -- statistics --
        self.busy_replies = 0
        self.timeouts = 0
        self.retries = 0

    # -- single request -------------------------------------------------------------
    def infer(self, target: Address, prompt: str,
              params: Optional[Dict[str, Any]] = None,
              balancer: Optional["LoadBalancer"] = None,
              targets: Optional[Sequence[Address]] = None):
        """Process body: one request/reply; returns :class:`InferenceResult`.

        Use as ``result = yield from client.infer(addr, "...")`` inside a
        simulation process.  Busy replies (bounded-queue shedding) and
        timeouts are retried up to ``max_retries`` times with jittered
        exponential backoff; when *balancer* (and optionally *targets*) are
        given, each retry re-picks the target and the balancer's in-flight
        accounting is updated on every exit path.
        """
        engine = self.session.engine
        payload = {"op": "infer", "prompt": prompt, "params": params or {}}
        t_first = engine.now
        attempt = 0
        while True:
            t0 = engine.now
            reply: Optional[Message] = None
            if balancer is not None:
                balancer.record_start(target)
            try:
                reply = yield from self._request(target, payload)
            finally:
                if balancer is not None:
                    balancer.record_done(target)

            if reply is not None:
                result = self._decompose(reply, t0, engine.now)
                result.retries = attempt
                if not result.busy:
                    result.submitted_at = t_first
                    result.response_time = engine.now - t_first
                    result.communication = (result.response_time
                                            - result.service_time
                                            - result.inference_time)
                    self.results.append(result)
                    return result
                self.busy_replies += 1
            else:
                self.timeouts += 1

            if attempt >= self.max_retries:
                if reply is None:
                    raise RequestTimeout(
                        f"{self.uid}: no reply from {target} after "
                        f"{attempt + 1} attempts")
                # Shed on every attempt: surface the busy result, spanning
                # the whole retry window like the success path does.
                result.submitted_at = t_first
                result.response_time = engine.now - t_first
                result.communication = (result.response_time
                                        - result.service_time
                                        - result.inference_time)
                self.results.append(result)
                return result

            attempt += 1
            self.retries += 1
            yield engine.timeout(self._backoff(attempt))
            if balancer is not None and targets:
                target = balancer.pick(targets)

    def _request(self, target: Address, payload: Dict[str, Any]):
        """Process body: one wire exchange, honouring ``timeout_s``.

        Returns the reply message, or None when the timeout expired first
        (the pending request is abandoned so a late reply is dropped).
        """
        engine = self.session.engine
        event = self.socket.request(target, dict(payload))
        if self.timeout_s is None:
            reply = yield event
            return reply
        timer = engine.timeout(self.timeout_s)
        yield engine.any_of([event, timer])
        if event.processed:
            if not timer.processed:
                timer.cancel()
            return event.value
        self.socket.cancel_request(event)
        return None

    def _backoff(self, attempt: int) -> float:
        """Jittered exponential backoff before retry number *attempt*."""
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (attempt - 1)))
        return float(base * self._rng.uniform(0.5, 1.5))

    def ping(self, target: Address):
        """Process body: liveness probe; returns round-trip seconds."""
        engine = self.session.engine
        t0 = engine.now
        yield self.socket.request(target, {"op": "ping"})
        return engine.now - t0

    def _decompose(self, reply: Message, t0: float,
                   t1: float) -> InferenceResult:
        meta = reply.meta
        payload = reply.payload or {}
        received = meta.get("received_at", t1)
        dequeued = meta.get("dequeued_at", received)
        infer_start = meta.get("infer_start_at", dequeued)
        infer_stop = meta.get("infer_stop_at", infer_start)
        replied = meta.get("replied_at", infer_stop)
        rt = t1 - t0
        server_span = replied - received
        inference = infer_stop - infer_start
        service_time = server_span - inference
        return InferenceResult(
            client_uid=self.uid,
            service_uid=meta.get("service_uid", "?"),
            ok=bool(payload.get("ok", False)),
            submitted_at=t0,
            completed_at=t1,
            response_time=rt,
            communication=rt - server_span,
            service_time=service_time,
            inference_time=inference,
            queue_time=dequeued - received,
            payload=payload,
        )

    # -- request streams --------------------------------------------------------------
    def run_workload(self, targets, n_requests: int,
                     prompt: str = "noop",
                     params: Optional[Dict[str, Any]] = None,
                     balancer: Optional["LoadBalancer"] = None):
        """Process body: issue *n_requests* sequentially (the paper's client).

        Each client sends a fixed number of requests (1024 in Exp 2/3) one
        after another; the target for each request comes from the load
        balancer (round-robin by default over *targets*).  *targets* may be
        a static address sequence or a zero-argument callable returning the
        currently-available addresses (autoscaled fleets grow and shrink
        between requests).  Returns the list of results.
        """
        from .load_balancer import RoundRobinBalancer  # avoid cycle

        engine = self.session.engine
        resolve = targets if callable(targets) else (lambda: targets)
        if not callable(targets) and not targets:
            raise ValueError("run_workload needs at least one target")
        balancer = balancer or RoundRobinBalancer()
        mine: List[InferenceResult] = []
        for _ in range(n_requests):
            current = list(resolve())
            while not current:
                # Fleet momentarily empty (autoscaler rebuilding): wait.
                yield engine.timeout(0.1)
                current = list(resolve())
            target = balancer.pick(current)
            result = yield from self.infer(target, prompt, params,
                                           balancer=balancer,
                                           targets=current)
            mine.append(result)
        return mine

    # -- stats ------------------------------------------------------------------------
    def mean_rt(self) -> float:
        if not self.results:
            return float("nan")
        return sum(r.response_time for r in self.results) / len(self.results)

    def clear(self) -> None:
        self.results.clear()
