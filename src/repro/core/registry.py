"""Endpoint registry: where services publish and clients discover endpoints.

The third bootstrap component of Experiment 1 is "communicat[ing] the
service endpoints to the task" (§IV-A) -- the ``publish`` phase of Fig. 3.
The registry is itself a bus-served component: services register over
request/reply (paying a fabric round-trip plus the registry's processing
cost), and clients/load-balancers look endpoints up either over the bus or
through the cheap in-process read path.

The registry also ingests the fleet's load telemetry: every service
instance publishes a :class:`~repro.comm.message.LoadReport` on
:data:`~repro.comm.message.TELEMETRY_TOPIC` with each heartbeat, and the
registry attaches the latest report to the corresponding
:class:`ServiceInfo`.  Telemetry-aware load balancers
(:class:`~repro.core.load_balancer.JoinShortestQueueBalancer`) and the
:class:`~repro.core.autoscaler.Autoscaler` read it from here.  Reports
arrive with fabric latency and heartbeat cadence, so consumers see
*stale* load -- exactly the information regime a real control plane has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..comm.message import TELEMETRY_TOPIC, Address, LoadReport, Message
from ..utils.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = ["ServiceInfo", "EndpointRegistry"]

log = get_logger("core.registry")

#: Registry-side processing cost of a (de)registration: endpoint validation
#: and synchronisation with the agent.  Calibrated so the Fig. 3 publish
#: component sits below the ~2 s launch component.
PUBLISH_PROCESS_MEAN_S = 0.8
PUBLISH_PROCESS_STD_S = 0.1


@dataclass
class ServiceInfo:
    """One registered service endpoint."""

    uid: str
    name: str
    address: Address
    model: str
    backend: str
    platform: str
    registered_at: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    #: latest load telemetry (None until the first heartbeat arrives)
    load: Optional[LoadReport] = None


class EndpointRegistry:
    """Bus-served registry of live service endpoints."""

    def __init__(self, session: "Session", platform: str = "localhost",
                 name: str = "registry", lease_s: float = 0.0) -> None:
        if lease_s < 0:
            raise ValueError("lease_s must be >= 0 (0 = no lease filtering)")
        self.session = session
        self.platform = platform
        #: liveness lease: an entry whose last telemetry heartbeat is older
        #: than this is reported stale (a crashed instance never
        #: deregisters -- lease expiry is how the registry notices).
        #: 0 keeps the seed behaviour: registered means live.
        self.lease_s = lease_s
        self.socket = session.bus.bind(name, platform=platform)
        self._entries: Dict[str, ServiceInfo] = {}
        self._by_uid: Dict[str, ServiceInfo] = {}
        self._loads: Dict[str, LoadReport] = {}
        self._rng = session.rng(f"registry.{name}")
        self._server = session.engine.process(self._serve())
        self._telemetry_sub = session.bus.subscribe(TELEMETRY_TOPIC,
                                                    platform=platform)
        self._telemetry = session.engine.process(self._ingest_telemetry())

    @property
    def address(self) -> Address:
        return self.socket.address

    # -- server loop -----------------------------------------------------------
    def _serve(self):
        """Accept loop: each request is handled by its own process.

        Registrations are processed concurrently -- the processing cost
        models per-endpoint validation/synchronisation work, not an
        exclusive registry lock.  (A serialising registry would make the
        Fig. 3 publish component grow linearly with the instance count,
        which the paper does not observe.)
        """
        while True:
            msg: Message = yield self.socket.recv()
            self.session.engine.process(self._handle(msg))

    def _handle(self, msg: Message):
        engine = self.session.engine
        op = (msg.payload or {}).get("op")
        # Processing cost applies to state-changing operations.
        if op in ("register", "deregister"):
            cost = max(0.05, self._rng.normal(PUBLISH_PROCESS_MEAN_S,
                                              PUBLISH_PROCESS_STD_S))
            yield engine.timeout(cost)
        if op == "register":
            info = msg.payload["info"]
            info.registered_at = engine.now
            self._entries[info.name] = info
            self._by_uid[info.uid] = info
            self.socket.reply(msg, {"ok": True, "name": info.name})
        elif op == "deregister":
            found = self._entries.pop(msg.payload["name"], None)
            if found is not None:
                self._by_uid.pop(found.uid, None)
                self._loads.pop(found.uid, None)
            self.socket.reply(msg, {"ok": found is not None})
        elif op == "lookup":
            info = self._entries.get(msg.payload["name"])
            self.socket.reply(msg, {"ok": info is not None, "info": info})
        elif op == "list":
            self.socket.reply(
                msg, {"ok": True, "services": list(self._entries.values())})
        else:
            self.socket.reply(msg, {"ok": False,
                                    "error": f"unknown op {op!r}"})

    # -- telemetry ingestion -------------------------------------------------------
    def _ingest_telemetry(self):
        """Consume fleet LoadReports published on the telemetry topic."""
        while True:
            msg: Message = yield self._telemetry_sub.get()
            report = msg.payload
            if not isinstance(report, LoadReport):
                log.warning("ignoring malformed telemetry %r", report)
                continue
            info = self._by_uid.get(report.uid)
            if info is None:
                # Not (or no longer) registered: a deregistered instance
                # keeps heartbeating while it drains -- storing its report
                # would leave a permanently stale entry behind.
                continue
            # Keep only the freshest report per instance (pub/sub legs from
            # different platforms may reorder).
            known = self._loads.get(report.uid)
            if known is not None and known.t > report.t:
                continue
            self._loads[report.uid] = report
            info.load = report

    # -- cheap in-process reads (used by load balancers and tests) -----------------
    def lookup(self, name: str) -> Optional[ServiceInfo]:
        return self._entries.get(name)

    def load_of(self, uid: str) -> Optional[LoadReport]:
        """Latest telemetry for a service uid (None before first beat)."""
        return self._loads.get(uid)

    def load_for(self, address: Address) -> Optional[LoadReport]:
        """Latest telemetry for the instance bound at *address*."""
        info = self._entries.get(address.name)
        return info.load if info is not None else None

    def list_services(self, model: Optional[str] = None,
                      platform: Optional[str] = None) -> List[ServiceInfo]:
        out = list(self._entries.values())
        if model is not None:
            out = [s for s in out if s.model == model]
        if platform is not None:
            out = [s for s in out if s.platform == platform]
        return out

    # -- lease semantics -----------------------------------------------------------
    def is_live(self, uid: str) -> bool:
        """Is the instance's telemetry lease still valid?

        With no lease configured every registered entry counts as live.
        Before the first heartbeat arrives the registration time anchors
        the lease (freshly published services get a grace window).
        """
        info = self._by_uid.get(uid)
        if info is None:
            return False
        if self.lease_s <= 0:
            return True
        last = info.load.t if info.load is not None else info.registered_at
        return self.session.engine.now - last <= self.lease_s

    def live_services(self, model: Optional[str] = None,
                      platform: Optional[str] = None) -> List[ServiceInfo]:
        """Registered services whose lease has not expired."""
        return [s for s in self.list_services(model, platform)
                if self.is_live(s.uid)]

    def expired_services(self) -> List[ServiceInfo]:
        """Registered-but-silent entries (crashed or partitioned)."""
        return [s for s in self._entries.values() if not self.is_live(s.uid)]

    def __len__(self) -> int:
        return len(self._entries)
