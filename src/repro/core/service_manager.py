"""ServiceManager: the control plane of the paper's runtime extension.

Complementing the existing TaskManager (§III, Fig. 2), the ServiceManager
turns :class:`~repro.pilot.description.ServiceDescription` objects into
running, discoverable, monitored service instances:

* **launch**  -- the service task is scheduled (with priority) on pilot
  resources and its executable launched (Fig. 3 ``launch``);
* **init**    -- the serving host loads and initialises the model
  (Fig. 3 ``init``, the dominating component);
* **publish** -- the endpoint is registered with the
  :class:`~repro.core.registry.EndpointRegistry` (Fig. 3 ``publish``);
* **ready**   -- the instance serves requests until stopped; liveness is
  observable via heartbeats and the ``watch_liveness`` watchdog.

Orderly shutdown deregisters the endpoint *first* (telemetry-reading load
balancers stop routing there), then drains the instance's admitted
requests, then tears the data plane down -- so scaling down never drops
in-flight work.  :meth:`ServiceManager.start_autoscaler` attaches an
:class:`~repro.core.autoscaler.Autoscaler` that grows and shrinks a
service group against queue-delay SLOs using the registry's telemetry.

Remote services (the paper's R3 scenario) attach to persistent endpoints:
"Remote models are usually persistent on dedicated resources and do not
need to be bootstrapped" (§IV-A) -- so ``start_remote`` registers them
without charging (or recording) bootstrap phases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Union

from ..comm.message import Address
from ..pilot.description import ServiceDescription
from ..pilot.states import SERVICE_MODEL, ServiceState, TaskState
from ..pilot.task import Pilot, Task
from ..serving.hosts import create_host
from ..sim.events import Event, Interrupt, Process
from ..utils.log import get_logger
from .autoscaler import Autoscaler, AutoscalerConfig
from .registry import EndpointRegistry, ServiceInfo
from .service import ServiceInstance

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = ["ServiceHandle", "ServiceManager"]

log = get_logger("core.smgr")


class ServiceHandle:
    """User-facing handle of one managed service."""

    def __init__(self, session: "Session", description: ServiceDescription,
                 uid: str) -> None:
        self.session = session
        self.description = description
        self.uid = uid
        self.task = Task(session, description, uid)  # the Service Task (§III)
        self.service_state = ServiceState.DEFINED
        self.address: Optional[Address] = None
        self.instance: Optional[ServiceInstance] = None
        self.pilot_uid: Optional[str] = None
        self.platform: Optional[str] = None
        self.remote = False
        #: succeeds with the handle once READY; fails if startup fails
        self.ready: Event = session.engine.event()
        #: succeeds with the final service state
        self.stopped: Event = session.engine.event()
        self._stop_requested: Event = session.engine.event()

    def advance_service(self, state: str) -> None:
        """Validated service-state transition with profiling."""
        SERVICE_MODEL.check(self.service_state, state)
        self.service_state = state
        self.session.profiler.record(
            self.session.engine.now, self.uid, f"svc:{state}", "smgr")

    @property
    def is_ready(self) -> bool:
        return self.service_state == ServiceState.READY

    def __repr__(self) -> str:
        return f"<ServiceHandle {self.uid} {self.service_state}>"


class ServiceManager:
    """Manages service lifecycles within one session."""

    def __init__(self, session: "Session",
                 registry: Optional[EndpointRegistry] = None,
                 registry_platform: str = "localhost") -> None:
        self.session = session
        self.uid = session.ids.generate("smgr")
        self.registry = registry or EndpointRegistry(
            session, platform=registry_platform)
        self._reg_sock = session.bus.connect(
            self.registry.platform, name=f"{self.uid}.regsock")
        self._handles: Dict[str, ServiceHandle] = {}
        self._drivers: Dict[str, Process] = {}
        #: concurrent model loads per platform (drives init contention)
        self._loading: Dict[str, int] = {}
        self._resilience = session.resilience
        self._own_monitor = None  # lazy, for liveness without resilience
        if self._resilience is not None and \
                self._resilience.injector is not None:
            self._resilience.injector.arm_services(self)

    # -- local (pilot-hosted) services ---------------------------------------------
    def start_services(
        self,
        descriptions: Union[ServiceDescription, Iterable[ServiceDescription]],
        pilot: Pilot,
    ) -> List[ServiceHandle]:
        """Bootstrap services on *pilot*'s resources; returns handles."""
        if isinstance(descriptions, ServiceDescription):
            descriptions = [descriptions]
        handles: List[ServiceHandle] = []
        for desc in descriptions:
            handle = ServiceHandle(self.session, desc,
                                   self.session.ids.generate("service"))
            handle.pilot_uid = pilot.uid
            self._handles[handle.uid] = handle
            driver = self.session.engine.process(
                self._drive_local(handle, pilot))
            self._drivers[handle.uid] = driver
            self.session.engine.process(
                self._startup_watchdog(handle, driver))
            handles.append(handle)
        return handles

    def _startup_watchdog(self, handle: ServiceHandle, driver: Process):
        """Fail the bootstrap if it exceeds the description's timeout."""
        engine = self.session.engine
        timer = engine.timeout(handle.description.startup_timeout_s)
        yield engine.any_of([handle.ready, timer])
        if handle.ready.processed or handle.ready.triggered:
            if not timer.processed:
                timer.cancel()
            return
        if driver.is_alive:
            log.warning("%s startup timed out after %.0fs", handle.uid,
                        handle.description.startup_timeout_s)
            driver.interrupt("startup timeout")

    def _drive_local(self, handle: ServiceHandle, pilot: Pilot):
        engine = self.session.engine
        profiler = self.session.profiler
        desc = handle.description
        task = handle.task
        scheduled = False
        try:
            if not pilot.is_active:
                yield pilot.became_active
            platform = pilot.platform
            handle.platform = platform.name
            profiler.record(engine.now, handle.uid, "bootstrap_start",
                            self.uid)

            # -- launch phase -----------------------------------------------------
            handle.advance_service(ServiceState.LAUNCHING)
            task.advance(TaskState.TMGR_SCHEDULING, self.uid)
            task.advance(TaskState.AGENT_SCHEDULING, self.uid)
            grant = pilot.agent.scheduler.schedule(task)
            try:
                yield grant
            except Interrupt:
                pilot.agent.scheduler.withdraw(task)
                raise
            scheduled = True
            task.advance(TaskState.AGENT_EXECUTING, self.uid)
            yield from pilot.agent.executor.launch(task)

            # -- init phase -------------------------------------------------------
            handle.advance_service(ServiceState.INITIALIZING)
            profiler.record(engine.now, handle.uid, "init_start", self.uid)
            host = create_host(desc.backend, desc.model,
                               max_concurrency=desc.max_concurrency,
                               max_batch_size=desc.max_batch_size or None)
            rng = self.session.rng(f"smgr.init.{handle.uid}")
            self._loading[platform.name] = \
                self._loading.get(platform.name, 0) + 1
            try:
                load_s = host.load_time(
                    rng, concurrent_loads=self._loading[platform.name],
                    fs_bandwidth_gbps=platform.fs_bandwidth_gbps,
                    fs_aggregate_gbps=platform.fs_aggregate_gbps)
                yield engine.timeout(load_s)
            finally:
                self._loading[platform.name] -= 1
            profiler.record(engine.now, handle.uid, "init_stop", self.uid)

            # -- publish phase ------------------------------------------------------
            handle.advance_service(ServiceState.PUBLISHING)
            profiler.record(engine.now, handle.uid, "publish_start", self.uid)
            endpoint = desc.endpoint_name or f"{handle.uid}.ep"
            socket = self.session.bus.bind(endpoint, platform=platform.name)
            handle.address = socket.address
            info = ServiceInfo(
                uid=handle.uid, name=endpoint, address=socket.address,
                model=desc.model, backend=desc.backend,
                platform=platform.name)
            yield self._reg_sock.request(self.registry.address,
                                         {"op": "register", "info": info})
            profiler.record(engine.now, handle.uid, "publish_stop", self.uid)

            # -- ready ---------------------------------------------------------------
            handle.instance = ServiceInstance(
                self.session, handle.uid, socket, host,
                heartbeat_interval_s=desc.heartbeat_interval_s,
                max_queue_depth=desc.max_queue_depth)
            handle.instance.start()
            handle.advance_service(ServiceState.READY)
            profiler.record(engine.now, handle.uid, "bootstrap_stop",
                            self.uid)
            handle.ready.succeed(handle)
            if self._resilience is not None:
                self.watch_liveness(
                    handle, misses=self._resilience.config.lease_misses)
            log.info("%s ready at %s (t=%.1fs)", handle.uid, handle.address,
                     engine.now)

            # -- serve until stop requested ---------------------------------------------
            yield handle._stop_requested
            handle.advance_service(ServiceState.STOPPING)
            # Deregister first (no new traffic routes here), then drain so
            # every admitted request still gets its reply, then tear down.
            yield self._reg_sock.request(self.registry.address,
                                         {"op": "deregister",
                                          "name": endpoint})
            yield from handle.instance.drain()
            handle.instance.stop()
            handle.advance_service(ServiceState.STOPPED)
            task.finish(TaskState.DONE, self.uid)
        except Interrupt as intr:
            self._fail_handle(handle, RuntimeError(str(intr.cause)))
        except Exception as exc:
            self._fail_handle(handle, exc)
        finally:
            if scheduled and task.uid in pilot.agent.scheduler.held_tasks:
                pilot.agent.scheduler.release(task)
            if not handle.stopped.triggered:
                handle.stopped.succeed(handle.service_state)

    def _fail_handle(self, handle: ServiceHandle,
                     exc: BaseException) -> None:
        if handle.instance is not None and handle.instance.running:
            handle.instance.stop()
        if handle.address is not None \
                and self.registry.lookup(handle.address.name) is not None:
            # The failure is now *observed* (liveness/startup watchdog):
            # scrub the stale endpoint so no new traffic routes there.
            name = handle.address.name

            def scrub():
                yield self._reg_sock.request(self.registry.address,
                                             {"op": "deregister",
                                              "name": name})

            self.session.engine.process(scrub())
        if handle.service_state not in ServiceState.FINAL:
            handle.service_state = ServiceState.FAILED
            self.session.profiler.record(
                self.session.engine.now, handle.uid,
                f"svc:{ServiceState.FAILED}", self.uid)
        if not handle.task.is_final:
            handle.task.exception = exc
            handle.task.finish(TaskState.FAILED, self.uid)
        if not handle.ready.triggered:
            handle.ready.fail(exc)
            handle.ready.defuse()
        log.info("%s failed: %s", handle.uid, exc)

    # -- remote (persistent) services --------------------------------------------------
    def start_remote(self, description: ServiceDescription,
                     platform: str) -> ServiceHandle:
        """Attach a persistent remote service (no bootstrap, no BT).

        The endpoint is bound and registered immediately; the model is
        assumed resident (paper §IV-A).
        """
        handle = ServiceHandle(self.session, description,
                               self.session.ids.generate("service"))
        handle.remote = True
        handle.platform = platform
        self._handles[handle.uid] = handle
        self._drivers[handle.uid] = self.session.engine.process(
            self._drive_remote(handle, platform))
        return handle

    def _drive_remote(self, handle: ServiceHandle, platform: str):
        desc = handle.description
        try:
            handle.advance_service(ServiceState.LAUNCHING)
            handle.advance_service(ServiceState.INITIALIZING)
            handle.advance_service(ServiceState.PUBLISHING)
            endpoint = desc.endpoint_name or f"{handle.uid}.ep"
            socket = self.session.bus.bind(endpoint, platform=platform)
            handle.address = socket.address
            host = create_host(desc.backend, desc.model,
                               max_concurrency=desc.max_concurrency,
                               max_batch_size=desc.max_batch_size or None)
            info = ServiceInfo(
                uid=handle.uid, name=endpoint, address=socket.address,
                model=desc.model, backend=desc.backend, platform=platform,
                meta={"remote": True})
            yield self._reg_sock.request(self.registry.address,
                                         {"op": "register", "info": info})
            handle.instance = ServiceInstance(
                self.session, handle.uid, socket, host,
                heartbeat_interval_s=desc.heartbeat_interval_s,
                max_queue_depth=desc.max_queue_depth)
            handle.instance.start()
            handle.advance_service(ServiceState.READY)
            handle.ready.succeed(handle)
            if self._resilience is not None:
                self.watch_liveness(
                    handle, misses=self._resilience.config.lease_misses)

            yield handle._stop_requested
            handle.advance_service(ServiceState.STOPPING)
            yield self._reg_sock.request(self.registry.address,
                                         {"op": "deregister",
                                          "name": endpoint})
            yield from handle.instance.drain()
            handle.instance.stop()
            handle.advance_service(ServiceState.STOPPED)
        except Interrupt as intr:
            self._fail_handle(handle, RuntimeError(str(intr.cause)))
        except Exception as exc:
            self._fail_handle(handle, exc)
        finally:
            if not handle.stopped.triggered:
                handle.stopped.succeed(handle.service_state)

    # -- elasticity ------------------------------------------------------------------------
    def start_autoscaler(self, description: ServiceDescription,
                         pilot: Optional[Pilot] = None,
                         remote_platform: Optional[str] = None,
                         config: Optional[AutoscalerConfig] = None,
                         handles: Optional[List[ServiceHandle]] = None,
                         ) -> Autoscaler:
        """Start an :class:`Autoscaler` managing instances of *description*.

        Give either *pilot* (instances bootstrap on pilot resources) or
        *remote_platform* (persistent attachment).  Pre-existing *handles*
        are adopted into the managed group; the autoscaler tops the group
        up to ``config.min_instances`` immediately and then scales between
        min and max against the registry's load telemetry.
        """
        scaler = Autoscaler(self, description, pilot=pilot,
                            remote_platform=remote_platform,
                            config=config, handles=handles)
        return scaler.start()

    # -- control ---------------------------------------------------------------------------
    def stop_services(
        self, handles: Union[ServiceHandle, Iterable[ServiceHandle]],
    ) -> None:
        """Request orderly shutdown of the given services."""
        if isinstance(handles, ServiceHandle):
            handles = [handles]
        for handle in handles:
            if handle.service_state in ServiceState.FINAL:
                continue
            if not handle._stop_requested.triggered:
                handle._stop_requested.succeed("stop")

    def wait_ready(
        self, handles: Union[ServiceHandle, Iterable[ServiceHandle]],
    ) -> Event:
        """Event succeeding when all given services are READY."""
        if isinstance(handles, ServiceHandle):
            handles = [handles]
        return self.session.engine.all_of([h.ready for h in handles])

    def wait_stopped(
        self, handles: Union[ServiceHandle, Iterable[ServiceHandle]],
    ) -> Event:
        if isinstance(handles, ServiceHandle):
            handles = [handles]
        return self.session.engine.all_of([h.stopped for h in handles])

    # -- fault injection ------------------------------------------------------------------
    def crash_service(self, handle: ServiceHandle) -> bool:
        """Crash a service's data plane abruptly (fault injection).

        The instance dies mid-flight: admitted requests are dropped, the
        endpoint socket unbinds, heartbeats cease.  Nothing notifies the
        control plane -- the liveness watchdog has to notice the silence,
        which is exactly the detection latency the resilience metrics
        report.  Returns False when there was nothing live to crash.
        """
        if handle.instance is None or not handle.instance.running:
            return False
        handle.instance.stop()
        return True

    # -- liveness ------------------------------------------------------------------------
    def _liveness_monitor(self):
        """The HeartbeatMonitor service leases live on.

        Resilient sessions share the subsystem's monitor (service
        declarations land in the same detection records as pilot ones);
        otherwise a manager-local monitor provides the lease semantics.
        """
        if self._resilience is not None:
            return self._resilience.monitor
        if self._own_monitor is None:
            from ..resilience.detection import HeartbeatMonitor
            self._own_monitor = HeartbeatMonitor(
                self.session, platform=self.registry.platform)
        return self._own_monitor

    def watch_liveness(self, handle: ServiceHandle,
                       misses: int = 3) -> Process:
        """Spawn a watchdog failing the service after missed heartbeats."""
        return self.session.engine.process(
            self._liveness_loop(handle, misses))

    def _liveness_loop(self, handle: ServiceHandle, misses: int):
        """Lease the instance's existing heartbeat channel; act on expiry."""
        monitor = self._liveness_monitor()
        lease = monitor.watch(handle.uid,
                              handle.description.heartbeat_interval_s,
                              misses, topic=f"heartbeat.{handle.uid}")
        yield self.session.engine.any_of([lease.declared, handle.stopped])
        if not lease.declared.processed:
            monitor.deregister(handle.uid)  # orderly end: no declaration
            return
        if handle.service_state == ServiceState.READY:
            log.warning("%s missed %d heartbeats; marking FAILED",
                        handle.uid, misses)
            driver = self._drivers.get(handle.uid)
            if driver is not None and driver.is_alive:
                driver.interrupt("liveness failure")

    # -- introspection -------------------------------------------------------------------
    def get(self, uid: str) -> ServiceHandle:
        return self._handles[uid]

    @property
    def services(self) -> List[ServiceHandle]:
        return list(self._handles.values())

    def ready_services(self) -> List[ServiceHandle]:
        return [h for h in self._handles.values() if h.is_ready]
