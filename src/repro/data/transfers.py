"""Contention-aware transfer scheduling over the fabric's links.

The seed runtime replayed staging directives sequentially, each transfer
seeing the link's full bandwidth regardless of what else was in flight.
The :class:`TransferScheduler` replaces that with one
:class:`~repro.hpc.network.SharedLink` per fabric route: independent
directives run *concurrently* as simulation processes, and concurrent flows
on the same link fair-share its capacity -- so three parallel 1 GB stages on
one 1 GB/s WAN link still take ~3 s of wall time, but stages on *different*
links overlap for free and the one-way latency of each transfer is paid
concurrently rather than in series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..hpc.network import Fabric, SharedLink
from ..sim.events import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = ["TransferAborted", "TransferRecord", "TransferScheduler"]


class TransferAborted(Exception):
    """An in-flight transfer was cancelled (e.g. its task was cancelled).

    Distinct from :class:`~repro.sim.events.Interrupt` so that processes
    *waiting* on the aborted transfer (in-flight dedup riders) can tell
    "the owner went away, retry yourself" apart from "I was cancelled".
    """


@dataclass(frozen=True)
class TransferRecord:
    """Outcome of one completed transfer."""

    src: str
    dst: str
    nbytes: float
    started: float
    finished: float
    uid: str = ""

    @property
    def duration(self) -> float:
        return self.finished - self.started


class TransferScheduler:
    """Runs transfers over shared-bandwidth links, one per fabric route."""

    def __init__(self, session: "Session") -> None:
        self.session = session
        self._links: Dict[Tuple[str, str], SharedLink] = {}
        self.records: List[TransferRecord] = []
        self.bytes_moved = 0.0
        #: optional fault hook set by the resilience FaultInjector:
        #: ``corruption_check(src, dst, nbytes) -> bool`` decides whether a
        #: fully drained transfer arrives corrupt (checksum mismatch) and
        #: must be surfaced as :class:`TransferAborted`
        self.corruption_check = None
        self.corrupted_count = 0
        obs = session.observability
        self._obs_metrics = obs.metrics if obs is not None else None

    # -- links -------------------------------------------------------------------
    def link(self, src: str, dst: str) -> SharedLink:
        """The (lazily created) shared link serving the src<->dst route."""
        key = Fabric._key(src, dst)
        shared = self._links.get(key)
        if shared is None:
            route = self.session.fabric.route(src, dst)
            shared = SharedLink(self.session.engine, route.bandwidth_gbps,
                                name=f"{key[0]}<->{key[1]}")
            self._links[key] = shared
        return shared

    def links(self) -> Dict[Tuple[str, str], SharedLink]:
        return dict(self._links)

    def estimate(self, src: str, dst: str, nbytes: float) -> float:
        """Contention-aware ETA (mean latency + fair-shared serialisation).

        Deterministic -- consumes no RNG samples -- so placement decisions
        based on it never perturb the transfer-time streams.
        """
        route = self.session.fabric.route(src, dst)
        return route.latency.mean_s + self.link(src, dst).eta(nbytes)

    # -- execution ---------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float, uid: str = ""):
        """Simulation (sub)process: move *nbytes* from *src* to *dst*.

        One-way latency is sampled from the route, then the payload drains
        through the shared link at the fair-share rate.  Returns the
        :class:`TransferRecord`.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        engine = self.session.engine
        started = engine.now
        latency = self.session.fabric.latency(src, dst)
        if latency > 0:
            yield engine.timeout(latency)
        if nbytes > 0:
            link = self.link(src, dst)
            flow = link.transfer(nbytes)
            try:
                yield flow
            except Interrupt:
                # cancelled mid-flight: free the link for survivors
                link.abort(flow)
                raise
            # A link flap fails the flow event itself: the exception (a
            # TransferAborted from the injector) propagates to the caller.
            if self.corruption_check is not None \
                    and self.corruption_check(src, dst, nbytes):
                self.corrupted_count += 1
                raise TransferAborted(
                    f"transfer {src}->{dst} arrived corrupt "
                    f"({nbytes:.3g} bytes, checksum mismatch)")
        self.bytes_moved += nbytes
        record = TransferRecord(src=src, dst=dst, nbytes=float(nbytes),
                                started=started, finished=engine.now, uid=uid)
        self.records.append(record)
        if self._obs_metrics is not None and nbytes > 0:
            key = Fabric._key(src, dst)
            self._obs_metrics.counter(
                "transfer_link_bytes_total",
                {"link": f"{key[0]}<->{key[1]}"}).inc(nbytes)
        return record
