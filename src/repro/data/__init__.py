"""The data-locality subsystem: objects, replicas, caches, transfers.

The paper's workflows are *data-driven*: the Cell Painting pipeline moves a
1.6 TB Globus-managed dataset, and HPO rounds re-read the same training
features across dozens of trials.  This package gives the runtime a real
data plane for that traffic:

* :mod:`repro.data.objects`   -- content-addressed objects + replica registry;
* :mod:`repro.data.cache`     -- bounded per-platform LRU caches;
* :mod:`repro.data.transfers` -- contention-aware transfer scheduling over
  shared-bandwidth links.

:class:`DataServices` is the session-scoped facade stitching the three
together while keeping their joint invariants (the replica registry never
reports an object a platform does not hold; cache occupancy never exceeds
capacity).  :class:`DataConfig` carries the tuning knobs; pass one to
``Session(data_config=...)`` to change caching/placement behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from .cache import CacheManager, DEFAULT_CACHE_CAPACITY_BYTES
from .objects import (
    DataObject,
    ObjectStore,
    ReplicaError,
    ReplicaRegistry,
    object_id,
)
from .transfers import TransferRecord, TransferScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..pilot.session import Session

__all__ = [
    "CacheManager",
    "DEFAULT_CACHE_CAPACITY_BYTES",
    "DataConfig",
    "DataObject",
    "DataServices",
    "ObjectStore",
    "ReplicaError",
    "ReplicaRegistry",
    "TransferRecord",
    "TransferScheduler",
    "object_id",
]

PLACEMENTS = ("data_affinity", "round_robin")


@dataclass
class DataConfig:
    """Tuning knobs for the data subsystem."""

    #: model platform caches at all (False = the seed's cache-less behaviour)
    cache_enabled: bool = True
    #: default per-platform cache capacity in bytes
    cache_capacity_bytes: float = DEFAULT_CACHE_CAPACITY_BYTES
    #: TaskManager placement policy: prefer the pilot whose platform holds
    #: the largest share of a task's input bytes, or plain round-robin
    placement: str = "data_affinity"
    #: coalesce concurrent stages of the same object to the same platform
    dedup_inflight: bool = True
    #: data affinity yields to round-robin when the preferred pilot is
    #: carrying this many more live tasks than the least-loaded candidate
    affinity_load_slack: int = 8

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement {self.placement!r} not in {PLACEMENTS}")
        if self.cache_capacity_bytes < 0:
            raise ValueError("cache_capacity_bytes must be >= 0")
        if self.affinity_load_slack < 0:
            raise ValueError("affinity_load_slack must be >= 0")


class DataServices:
    """Session-scoped facade over store, registry, caches and transfers.

    All DataManagers (one per TaskManager) share the session's instance, so
    replica knowledge -- and therefore cache hits and data-affinity
    placement -- spans managers and workflow stages.
    """

    def __init__(self, session: "Session",
                 config: Optional[DataConfig] = None) -> None:
        self.session = session
        self.config = config or DataConfig()
        self.objects = ObjectStore()
        self.replicas = ReplicaRegistry()
        self.cache = CacheManager(self.config.cache_capacity_bytes)
        self.transfers = TransferScheduler(session)
        #: (oid, destination) -> completion event of the transfer already
        #: under way; session-scoped so in-flight dedup spans DataManagers
        self.inflight: dict = {}

    # -- queries -----------------------------------------------------------------
    def holds(self, location: str, oid: str) -> bool:
        return self.replicas.holds(location, oid)

    def input_objects(self, directives) -> List[tuple]:
        """``(oid, size_bytes)`` pairs for the data-bearing directives.

        Only ``transfer`` directives count: ``link`` is free everywhere and
        ``copy`` is intra-platform by definition.  Compute this once per
        task and reuse it across candidate platforms -- the digest is the
        expensive part of affinity scoring.
        """
        return [(object_id(d.source or d.target, d.size_bytes),
                 d.size_bytes)
                for d in directives if d.action == "transfer"]

    def resident_input_bytes(self, platform: str, directives) -> float:
        """Bytes of the given staging directives already at *platform*."""
        return self.resident_object_bytes(platform,
                                          self.input_objects(directives))

    def resident_object_bytes(self, platform: str, pairs) -> float:
        """Bytes of pre-digested ``(oid, size)`` pairs held at *platform*."""
        return sum(size for oid, size in pairs
                   if self.replicas.holds(platform, oid))

    # -- updates -----------------------------------------------------------------
    def touch(self, location: str, oid: str) -> None:
        self.cache.touch(location, oid)

    def register_durable(self, oid: str, location: str) -> None:
        """Record an origin copy that eviction never drops.

        A cache replica at the same location graduates out of the LRU: an
        object must never be durable *and* evictable at one location, or
        capacity pressure would trip over the durable guard.
        """
        self.cache.discard(location, oid)
        self.replicas.add(oid, location, durable=True)

    def admit(self, platform: str, obj: DataObject) -> List[DataObject]:
        """Cache *obj* at *platform*; returns evicted objects.

        Keeps registry and cache consistent: evicted entries lose their
        replica record, admitted ones gain it.  No-op when caching is
        disabled or the platform already holds a durable copy.
        """
        if not self.config.cache_enabled:
            return []
        if self.replicas.holds(platform, obj.oid):
            self.cache.touch(platform, obj.oid)
            return []
        admitted, evicted = self.cache.admit(platform, obj)
        for victim in evicted:
            self.replicas.remove(victim.oid, platform)
        if admitted:
            self.replicas.add(obj.oid, platform)
        return evicted
