"""Content-addressed data objects and their replica locations.

The runtime's staging directives name files (``source``/``target``) and
sizes; the data subsystem derives from them a stable *object identity* so
that the same input staged by many tasks -- the Cell Painting pipeline's
1.6 TB Globus dataset, HPO's repeated training features -- is recognised as
*one* object with many replicas instead of many unrelated transfers.

* :func:`object_id` -- digest-based content address (source path + size,
  the simulation's stand-in for a real checksum);
* :class:`ObjectStore` -- the catalog of known objects by digest;
* :class:`ReplicaRegistry` -- which locations (platforms, the client side)
  currently hold which objects.  *Durable* replicas are origin copies that
  eviction must never drop; non-durable ones are platform-cache residents
  managed by :class:`repro.data.cache.CacheManager`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set

__all__ = ["DataObject", "ObjectStore", "ReplicaRegistry", "ReplicaError",
           "object_id"]


def object_id(source: str, size_bytes: float) -> str:
    """Content address for a named dataset of a given size."""
    digest = hashlib.sha1(
        f"{source}\x00{int(size_bytes)}".encode()).hexdigest()[:16]
    return f"obj.{digest}"


@dataclass(frozen=True)
class DataObject:
    """One immutable dataset: identity plus size."""

    oid: str
    size_bytes: float
    source: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")


class ObjectStore:
    """Catalog of known data objects, keyed by content address."""

    def __init__(self) -> None:
        self._objects: Dict[str, DataObject] = {}

    def intern(self, source: str, size_bytes: float) -> DataObject:
        """Get-or-create the object for (source, size); idempotent."""
        oid = object_id(source, size_bytes)
        obj = self._objects.get(oid)
        if obj is None:
            obj = DataObject(oid=oid, size_bytes=float(size_bytes),
                             source=source)
            self._objects[oid] = obj
        return obj

    def get(self, oid: str) -> DataObject:
        return self._objects[oid]

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def objects(self) -> List[DataObject]:
        return list(self._objects.values())

    @property
    def total_bytes(self) -> float:
        return sum(o.size_bytes for o in self._objects.values())


class ReplicaError(Exception):
    """Raised for inconsistent replica bookkeeping."""


class ReplicaRegistry:
    """Tracks which locations hold which objects.

    A location is a platform name (platform cache replica) or the client
    side's platform (durable origin copy).  The registry is pure
    bookkeeping: admission/eviction policy lives in the cache manager, and
    the :class:`repro.data.DataServices` facade keeps the two consistent
    (invariant: the registry never reports an object a location does not
    hold).
    """

    def __init__(self) -> None:
        self._holders: Dict[str, Dict[str, bool]] = {}  # oid -> {loc: durable}
        self._at: Dict[str, Set[str]] = {}              # loc -> {oid}

    # -- updates -----------------------------------------------------------------
    def add(self, oid: str, location: str, durable: bool = False) -> None:
        """Record that *location* holds *oid* (durable wins over cached)."""
        entry = self._holders.setdefault(oid, {})
        entry[location] = durable or entry.get(location, False)
        self._at.setdefault(location, set()).add(oid)

    def remove(self, oid: str, location: str, force: bool = False) -> None:
        """Drop a replica; durable replicas require ``force=True``."""
        entry = self._holders.get(oid, {})
        if location not in entry:
            raise ReplicaError(f"{location!r} does not hold {oid!r}")
        if entry[location] and not force:
            raise ReplicaError(
                f"refusing to drop durable replica of {oid!r} at {location!r}")
        del entry[location]
        if not entry:
            self._holders.pop(oid, None)
        self._at[location].discard(oid)

    def drop_location(self, location: str) -> List[str]:
        """Forget every replica at *location* (e.g. a retired platform)."""
        oids = list(self._at.pop(location, set()))
        for oid in oids:
            entry = self._holders.get(oid, {})
            entry.pop(location, None)
            if not entry:
                self._holders.pop(oid, None)
        return oids

    # -- queries -----------------------------------------------------------------
    def holds(self, location: str, oid: str) -> bool:
        return oid in self._at.get(location, ())

    def is_durable(self, oid: str, location: str) -> bool:
        return self._holders.get(oid, {}).get(location, False)

    def holders(self, oid: str) -> FrozenSet[str]:
        return frozenset(self._holders.get(oid, ()))

    def objects_at(self, location: str) -> FrozenSet[str]:
        return frozenset(self._at.get(location, ()))

    def locations(self) -> List[str]:
        return [loc for loc, oids in self._at.items() if oids]

    def resident_bytes(self, location: str, objects: Iterable[DataObject],
                       ) -> float:
        """Bytes of the given objects already held at *location*."""
        return sum(o.size_bytes for o in objects
                   if self.holds(location, o.oid))
