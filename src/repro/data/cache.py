"""Per-platform LRU caches over data objects.

Each platform gets a bounded warm-storage tier (think burst buffer / scratch
quota): objects staged to the platform stay resident until capacity pressure
evicts the least-recently-used ones.  The cache holds *identities and
sizes*, not payloads -- this is a simulation -- but the accounting is exact:
occupancy never exceeds the configured capacity (property-tested), and an
object larger than the whole cache is simply never admitted (pass-through
staging, nothing evicted for it).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .objects import DataObject

__all__ = ["CacheManager", "DEFAULT_CACHE_CAPACITY_BYTES"]

#: Default per-platform warm-tier capacity: roomy enough that eviction only
#: matters when experiments bound it explicitly (200 TB ~ scratch quota).
DEFAULT_CACHE_CAPACITY_BYTES = 200e12


class CacheManager:
    """Bounded LRU caches, one per platform."""

    def __init__(self, capacity_bytes: float = DEFAULT_CACHE_CAPACITY_BYTES,
                 per_platform: Optional[Dict[str, float]] = None) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self._default_capacity = float(capacity_bytes)
        self._capacity: Dict[str, float] = {
            k: float(v) for k, v in (per_platform or {}).items()}
        for cap in self._capacity.values():
            if cap < 0:
                raise ValueError("per-platform capacity must be >= 0")
        self._lru: Dict[str, "OrderedDict[str, DataObject]"] = {}
        self._occupancy: Dict[str, float] = {}
        #: lifetime stats
        self.evictions = 0
        self.bytes_evicted = 0.0

    # -- capacity ---------------------------------------------------------------
    def capacity(self, platform: str) -> float:
        return self._capacity.get(platform, self._default_capacity)

    def set_capacity(self, platform: str, capacity_bytes: float) -> None:
        """Bound one platform's cache (shrinking does not evict eagerly --
        the next admission settles the books)."""
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self._capacity[platform] = float(capacity_bytes)

    def occupancy(self, platform: str) -> float:
        return self._occupancy.get(platform, 0.0)

    # -- queries ----------------------------------------------------------------
    def contains(self, platform: str, oid: str) -> bool:
        return oid in self._lru.get(platform, ())

    def entries(self, platform: str) -> List[str]:
        """Cached oids in LRU order (head = next eviction victim)."""
        return list(self._lru.get(platform, ()))

    # -- updates ----------------------------------------------------------------
    def touch(self, platform: str, oid: str) -> None:
        """Mark *oid* most-recently-used (no-op if absent)."""
        lru = self._lru.get(platform)
        if lru is not None and oid in lru:
            lru.move_to_end(oid)

    def admit(self, platform: str,
              obj: DataObject) -> Tuple[bool, List[DataObject]]:
        """Insert *obj*, evicting LRU entries until it fits.

        Returns ``(admitted, evicted)``.  Objects larger than the platform's
        capacity are not admitted and evict nothing.
        """
        cap = self.capacity(platform)
        if obj.size_bytes > cap:
            return False, []
        lru = self._lru.setdefault(platform, OrderedDict())
        if obj.oid in lru:
            lru.move_to_end(obj.oid)
            return True, []
        evicted: List[DataObject] = []
        while lru and self.occupancy(platform) + obj.size_bytes > cap:
            victim_oid, victim = lru.popitem(last=False)
            self._occupancy[platform] -= victim.size_bytes
            evicted.append(victim)
            self.evictions += 1
            self.bytes_evicted += victim.size_bytes
        if not lru:
            # float residue from out-of-order removals must not survive an
            # empty cache (it would make exact-capacity admissions fail)
            self._occupancy[platform] = 0.0
        lru[obj.oid] = obj
        self._occupancy[platform] = self.occupancy(platform) + obj.size_bytes
        return True, evicted

    def evict(self, platform: str, oid: str) -> Optional[DataObject]:
        """Drop one entry explicitly; returns it (or None if absent)."""
        obj = self.discard(platform, oid)
        if obj is not None:
            self.evictions += 1
            self.bytes_evicted += obj.size_bytes
        return obj

    def discard(self, platform: str, oid: str) -> Optional[DataObject]:
        """Remove an entry without counting it as an eviction (used when an
        object graduates to a durable, non-evictable copy)."""
        lru = self._lru.get(platform)
        if lru is None or oid not in lru:
            return None
        obj = lru.pop(oid)
        self._occupancy[platform] -= obj.size_bytes
        return obj
