"""Shared utilities: identifiers, configuration, logging and typing helpers.

These helpers are intentionally dependency-free (stdlib + numpy only) so that
every other subpackage can import them without cycles.
"""

from .ids import IdRegistry, generate_id, reset_id_counters
from .config import Config, ConfigError
from .log import get_logger, set_log_level

__all__ = [
    "IdRegistry",
    "generate_id",
    "reset_id_counters",
    "Config",
    "ConfigError",
    "get_logger",
    "set_log_level",
]
