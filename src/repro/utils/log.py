"""Logging setup shared across the runtime.

All loggers live under the ``repro`` namespace; :func:`get_logger` returns
namespaced children so users can tune verbosity per subsystem, e.g.::

    import logging
    logging.getLogger("repro.pilot").setLevel(logging.DEBUG)
"""

from __future__ import annotations

import logging
import os

__all__ = ["get_logger", "set_log_level"]

_ROOT = "repro"
_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger(_ROOT)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    level = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    root.setLevel(getattr(logging, level, logging.WARNING))
    root.propagate = False
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` root (``repro.<name>``)."""
    _configure_root()
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def set_log_level(level: int | str) -> None:
    """Set the level on the ``repro`` root logger."""
    _configure_root()
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logging.getLogger(_ROOT).setLevel(level)
