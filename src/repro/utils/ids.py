"""Deterministic, human-readable entity identifiers.

RADICAL-Pilot names entities like ``task.0003`` or ``pilot.0000`` within a
session.  We reproduce that convention: identifiers are ``<prefix>.<NNNN>``
with a per-prefix monotonic counter.  Counters live in an :class:`IdRegistry`
so that independent sessions (and independent tests) get independent,
reproducible numbering.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterator

__all__ = ["IdRegistry", "generate_id", "reset_id_counters"]


class IdRegistry:
    """A thread-safe factory for ``<prefix>.<NNNN>`` identifiers.

    Each prefix owns an independent counter starting at zero::

        >>> reg = IdRegistry()
        >>> reg.generate("task")
        'task.0000'
        >>> reg.generate("task")
        'task.0001'
        >>> reg.generate("pilot")
        'pilot.0000'
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}
        self._lock = threading.Lock()

    def generate(self, prefix: str, width: int = 4) -> str:
        """Return the next identifier for *prefix*."""
        return self.generate_batch(prefix, 1, width=width)[0]

    def generate_batch(self, prefix: str, count: int,
                       width: int = 4) -> list:
        """Return *count* consecutive identifiers under one lock acquisition.

        The bulk-submission path names tens of thousands of tasks at once;
        taking the lock per id (and re-resolving the counter) is pure
        overhead there.  Equivalent to
        ``[generate(prefix) for _ in range(count)]``: ids stay dense and
        monotonic.
        """
        if not prefix:
            raise ValueError("id prefix must be a non-empty string")
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            counter = self._counters.get(prefix)
            if counter is None:
                counter = itertools.count()
                self._counters[prefix] = counter
            seqs = [next(counter) for _ in range(count)]
        return [f"{prefix}.{seq:0{width}d}" for seq in seqs]

    def reset(self, prefix: str | None = None) -> None:
        """Reset one prefix counter, or all counters when *prefix* is None."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
            else:
                self._counters.pop(prefix, None)


#: Process-global registry used by entities created outside a session scope.
_GLOBAL_REGISTRY = IdRegistry()


def generate_id(prefix: str, width: int = 4) -> str:
    """Generate an identifier from the process-global registry."""
    return _GLOBAL_REGISTRY.generate(prefix, width=width)


def reset_id_counters(prefix: str | None = None) -> None:
    """Reset global id counters (used by tests for reproducible naming)."""
    _GLOBAL_REGISTRY.reset(prefix)
