"""Lightweight attribute-dict configuration objects.

RADICAL-Pilot descriptions are dict-like objects with a fixed schema.  We use
a small :class:`Config` base that validates keys against a declared schema,
supports defaults, nested access and dict round-tripping.  Descriptions in
:mod:`repro.pilot.description` build on this.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Mapping

__all__ = ["Config", "ConfigError"]


class ConfigError(Exception):
    """Raised for unknown keys or schema violations."""


#: default values safe to share across instances without copying
_IMMUTABLE = (str, int, float, bool, bytes, frozenset, type(None))


class Config:
    """A dict-backed object with schema-checked attribute access.

    Subclasses declare ``_schema`` (key -> type or tuple of types) and
    ``_defaults`` (key -> default value).  Unknown keys raise
    :class:`ConfigError` early instead of silently propagating typos.

    Default materialization is the control plane's per-task constructor
    cost (every :class:`~repro.pilot.description.TaskDescription` of a
    million-task campaign passes through here), so defaults are *not*
    deep-copied wholesale: each class caches, once, which defaults are
    immutable (shared by reference) and which are containers (copied
    per instance -- empty containers by construction, nested ones by
    deepcopy).  Semantics are identical to the seed's full deepcopy.
    """

    _schema: Dict[str, Any] = {}
    _defaults: Dict[str, Any] = {}

    @classmethod
    def _default_plan(cls):
        """(shared-defaults dict, [(key, copier), ...]) for this class."""
        plan = cls.__dict__.get("_default_plan_cache")
        if plan is None:
            shared: Dict[str, Any] = {}
            copied = []
            for key, value in cls._defaults.items():
                if isinstance(value, _IMMUTABLE) or (
                        isinstance(value, tuple)
                        and all(isinstance(v, _IMMUTABLE) for v in value)):
                    shared[key] = value
                elif isinstance(value, (dict, list, set)) and not value:
                    copied.append((key, type(value)))
                else:
                    copied.append(
                        (key, lambda v=value: copy.deepcopy(v)))
            plan = (shared, tuple(copied))
            cls._default_plan_cache = plan
        return plan

    def __init__(self, from_dict: Mapping[str, Any] | None = None, **kwargs: Any) -> None:
        shared, copied = self._default_plan()
        data: Dict[str, Any] = dict(shared)
        for key, make in copied:
            data[key] = make()
        merged: Dict[str, Any] = {}
        if from_dict:
            merged.update(from_dict)
        merged.update(kwargs)
        object.__setattr__(self, "_data", data)
        for key, value in merged.items():
            self._set(key, value)

    # -- validation ---------------------------------------------------------
    def _check(self, key: str, value: Any) -> Any:
        if key not in self._schema:
            raise ConfigError(
                f"{type(self).__name__}: unknown key {key!r} "
                f"(known: {sorted(self._schema)})"
            )
        expected = self._schema[key]
        if value is None or expected is None:
            return value
        if not isinstance(value, expected):
            # Be forgiving about int/float coercion -- common in descriptions.
            if expected in (float, (float,)) and isinstance(value, int):
                return float(value)
            if isinstance(expected, tuple) and float in expected and isinstance(value, int):
                return float(value)
            raise ConfigError(
                f"{type(self).__name__}.{key}: expected {expected}, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value

    def _set(self, key: str, value: Any) -> None:
        self._data[key] = self._check(key, value)

    # -- attribute protocol -------------------------------------------------
    def __getattr__(self, key: str) -> Any:
        data = object.__getattribute__(self, "_data")
        if key in data:
            return data[key]
        if key in self._schema:
            return None
        raise AttributeError(f"{type(self).__name__} has no attribute {key!r}")

    def __setattr__(self, key: str, value: Any) -> None:
        if key.startswith("_"):
            object.__setattr__(self, key, value)
        else:
            self._set(key, value)

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._set(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        """Return a deep copy of the underlying data."""
        return copy.deepcopy(self._data)

    def copy(self) -> "Config":
        return type(self)(from_dict=self.as_dict())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Config):
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    def __repr__(self) -> str:
        keys = ", ".join(f"{k}={v!r}" for k, v in sorted(self._data.items()))
        return f"{type(self).__name__}({keys})"
