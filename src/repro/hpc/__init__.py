"""HPC platform substrate: topology, batch allocation, launchers, network.

Models the machines the paper evaluates on (OLCF Frontier, NCSA Delta, the
R3 cloud server) at the level of detail the experiments exercise: node
topology, batch queueing, launch-method cost (including the MPI concurrency
knee of Fig. 3) and network latency distributions (§IV-C).
"""

from .platform import (
    DELTA,
    FRONTIER,
    LOCALHOST,
    PLATFORMS,
    R3,
    LatencySpec,
    PlatformSpec,
    get_platform,
    register_platform,
)
from .node import NodeList, NodeState, Slot
from .batch import BatchJob, BatchSystem, JobState
from .launcher import (
    LAUNCHERS,
    ForkLauncher,
    LaunchMethod,
    MpiexecLauncher,
    SshLauncher,
    get_launcher,
)
from .network import DEFAULT_WAN_LATENCY, Fabric, Route, SharedLink

__all__ = [
    "DELTA",
    "FRONTIER",
    "LOCALHOST",
    "PLATFORMS",
    "R3",
    "LatencySpec",
    "PlatformSpec",
    "get_platform",
    "register_platform",
    "NodeList",
    "NodeState",
    "Slot",
    "BatchJob",
    "BatchSystem",
    "JobState",
    "LAUNCHERS",
    "ForkLauncher",
    "LaunchMethod",
    "MpiexecLauncher",
    "SshLauncher",
    "get_launcher",
    "DEFAULT_WAN_LATENCY",
    "Fabric",
    "Route",
    "SharedLink",
]
