"""HPC platform catalog and resource topology descriptions.

The paper evaluates on three platforms (§IV): OLCF Frontier (Exp 1, up to 640
concurrent services), NCSA Delta (Exps 2-3, 256 cores / 16 GPUs per pilot)
and "R3", a cloud server exposing remote ML capabilities.  We describe each
platform's topology (nodes, cores, GPUs, memory) and its communication
characteristics (intra-platform latency), both calibrated to the figures
printed in the paper.

A :class:`PlatformSpec` is immutable; mutable node state lives in
:class:`repro.hpc.node.NodeState` instances created per allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = [
    "LatencySpec",
    "PlatformSpec",
    "PLATFORMS",
    "get_platform",
    "register_platform",
    "FRONTIER",
    "DELTA",
    "R3",
    "LOCALHOST",
]


@dataclass(frozen=True)
class LatencySpec:
    """A (mean, std) one-way message latency model, in milliseconds.

    Samples are truncated at ``floor_ms`` to keep latencies physical even in
    the gaussian tail.
    """

    mean_ms: float
    std_ms: float
    floor_ms: float = 1e-3

    def sample(self, rng, size: Optional[int] = None):
        """Draw one-way latency sample(s) in **seconds**."""
        import numpy as np

        draw = rng.normal(self.mean_ms, self.std_ms, size=size)
        return np.maximum(draw, self.floor_ms) * 1e-3

    @property
    def mean_s(self) -> float:
        return self.mean_ms * 1e-3


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of a compute platform.

    Attributes mirror what a pilot job needs to carve resources: node count
    and per-node cores/GPUs/memory, plus the platform's internal network
    latency and the default launch method for placing executables on nodes.
    """

    name: str
    nodes: int
    cores_per_node: int
    gpus_per_node: int
    mem_per_node_gb: float
    #: one-way latency between two nodes of this platform
    intra_latency: LatencySpec
    #: default launch method name (see repro.hpc.launcher)
    launch_method: str = "MPIEXEC"
    #: batch queue base wait (seconds, scale of an exponential wait model)
    queue_wait_scale_s: float = 0.0
    #: shared-filesystem read bandwidth *per client* (GB/s)
    fs_bandwidth_gbps: float = 2.0
    #: aggregate shared-filesystem bandwidth (GB/s); concurrent model loads
    #: share this pool once they exceed per-client capacity
    fs_aggregate_gbps: float = 100.0
    #: per-node mean time between failures (seconds; 0 = faults never
    #: injected unless a FaultModel overrides).  Leadership-class machines
    #: publish node MTBFs in the weeks; experiments compress the scale.
    node_mtbf_s: float = 0.0
    #: per-node mean time to repair after a crash (seconds)
    node_mttr_s: float = 300.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"{self.name}: nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError(f"{self.name}: cores_per_node must be >= 1")
        if self.gpus_per_node < 0:
            raise ValueError(f"{self.name}: gpus_per_node must be >= 0")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    def with_overrides(self, **kwargs) -> "PlatformSpec":
        """Return a copy with selected fields replaced (for experiments)."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Platform catalog.
#
# Topology numbers are the public machine specs; latency figures are the ones
# the paper reports in §IV-C: inter-node 0.063 +/- 0.014 ms (local scenario,
# Delta) and node-to-node 0.47 +/- 0.04 ms (Delta <-> R3 remote scenario).
# ---------------------------------------------------------------------------

#: OLCF Frontier: 9408 nodes, 64 cores (8 reserved for the OS -> 56 usable),
#: 8 effective GPUs (MI250X GCDs) per node.  Used for Experiment 1 (bootstrap
#: scaling to 640 service instances, one GPU each -> 80 nodes).
FRONTIER = PlatformSpec(
    name="frontier",
    nodes=9408,
    cores_per_node=56,
    gpus_per_node=8,
    mem_per_node_gb=512.0,
    intra_latency=LatencySpec(mean_ms=0.063, std_ms=0.014),
    launch_method="MPIEXEC",
    fs_bandwidth_gbps=2.0,     # Lustre per-client read cap
    fs_aggregate_gbps=250.0,   # shared pool under concurrent model loads
    description="OLCF Frontier (exascale, AMD MI250X), Experiment 1 platform",
)

#: NCSA Delta: A100 GPU partition; 64 cores + 4 GPUs per node.  The paper's
#: pilots use 256 cores / 16 GPUs = 4 such nodes (Table II).
DELTA = PlatformSpec(
    name="delta",
    nodes=124,
    cores_per_node=64,
    gpus_per_node=4,
    mem_per_node_gb=256.0,
    intra_latency=LatencySpec(mean_ms=0.063, std_ms=0.014),
    launch_method="MPIEXEC",
    fs_bandwidth_gbps=2.0,
    fs_aggregate_gbps=100.0,
    description="NCSA Delta (A100), Experiments 2-3 local platform",
)

#: R3: the cloud-based server hosting remote, persistent ML services.
R3 = PlatformSpec(
    name="r3",
    nodes=2,
    cores_per_node=32,
    gpus_per_node=8,
    mem_per_node_gb=384.0,
    intra_latency=LatencySpec(mean_ms=0.05, std_ms=0.01),
    launch_method="FORK",
    fs_bandwidth_gbps=1.0,
    fs_aggregate_gbps=10.0,
    description="Cloud server exposing remote ML capabilities (REST/ZeroMQ)",
)

#: A laptop-scale platform for examples and integration tests.
LOCALHOST = PlatformSpec(
    name="localhost",
    nodes=1,
    cores_per_node=8,
    gpus_per_node=2,
    mem_per_node_gb=16.0,
    intra_latency=LatencySpec(mean_ms=0.02, std_ms=0.005),
    launch_method="FORK",
    description="Single-node platform for local runs",
)


PLATFORMS: Dict[str, PlatformSpec] = {
    spec.name: spec for spec in (FRONTIER, DELTA, R3, LOCALHOST)
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by name (raises KeyError with a helpful message)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; known: {sorted(PLATFORMS)}") from None


def register_platform(spec: PlatformSpec, overwrite: bool = False) -> None:
    """Add a custom platform to the catalog."""
    if spec.name in PLATFORMS and not overwrite:
        raise ValueError(f"platform {spec.name!r} already registered")
    PLATFORMS[spec.name] = spec
