"""Launch-method cost models.

RADICAL-Pilot places executables on compute nodes through launch methods
(mpiexec/PRRTE, srun, ssh, fork).  Experiment 1 of the paper observes that
the time to *launch* service executables is nearly constant up to ~160
concurrent instances and then grows -- their preliminary analysis attributes
the growth to MPI startup time (§IV-B).  We model exactly that knee.

Each launcher exposes ``launch_time(n_concurrent, rng)``: the seconds it
takes one instance to be launched when ``n_concurrent`` instances are being
launched simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "LaunchMethod",
    "MpiexecLauncher",
    "SshLauncher",
    "ForkLauncher",
    "get_launcher",
    "LAUNCHERS",
]


class LaunchMethod:
    """Base class: a named launcher with a stochastic cost model."""

    name: str = "base"

    def launch_time(self, n_concurrent: int, rng) -> float:
        """Seconds to launch one instance among *n_concurrent* peers."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


@dataclass
class MpiexecLauncher(LaunchMethod):
    """PRRTE/PMIx-style launcher with a concurrency knee.

    Cost model: a constant base (DVM placement + process spawn) with mild
    gaussian jitter, plus a superlinear penalty once concurrent launches
    exceed ``knee`` (MPI runtime startup contention -- wire-up traffic grows
    with the number of simultaneously spawning processes).

    Calibration: base ~2 s matches RP's per-task executor overhead on
    leadership platforms; the knee at 160 and the growth exponent reproduce
    the shape of Fig. 3 (launch flat through 160 instances, visibly growing
    at 320 and 640).
    """

    name: str = "MPIEXEC"
    base_s: float = 2.0
    jitter_s: float = 0.3
    knee: int = 160
    slope_s: float = 0.02
    exponent: float = 1.1

    def launch_time(self, n_concurrent: int, rng) -> float:
        if n_concurrent < 1:
            raise ValueError("n_concurrent must be >= 1")
        cost = max(0.1, rng.normal(self.base_s, self.jitter_s))
        if n_concurrent > self.knee:
            over = n_concurrent - self.knee
            cost += self.slope_s * over ** self.exponent
        return float(cost)


@dataclass
class SshLauncher(LaunchMethod):
    """SSH-based launcher: no MPI knee, but linear connection contention."""

    name: str = "SSH"
    base_s: float = 0.6
    jitter_s: float = 0.1
    per_peer_s: float = 0.004

    def launch_time(self, n_concurrent: int, rng) -> float:
        if n_concurrent < 1:
            raise ValueError("n_concurrent must be >= 1")
        cost = max(0.05, rng.normal(self.base_s, self.jitter_s))
        cost += self.per_peer_s * (n_concurrent - 1)
        return float(cost)


@dataclass
class ForkLauncher(LaunchMethod):
    """Local fork/exec: effectively flat and cheap."""

    name: str = "FORK"
    base_s: float = 0.05
    jitter_s: float = 0.01

    def launch_time(self, n_concurrent: int, rng) -> float:
        if n_concurrent < 1:
            raise ValueError("n_concurrent must be >= 1")
        return float(max(0.005, rng.normal(self.base_s, self.jitter_s)))


LAUNCHERS: Dict[str, LaunchMethod] = {
    "MPIEXEC": MpiexecLauncher(),
    "SSH": SshLauncher(),
    "FORK": ForkLauncher(),
}


def get_launcher(name: str) -> LaunchMethod:
    """Look up a launcher by (case-insensitive) name."""
    try:
        return LAUNCHERS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown launch method {name!r}; known: {sorted(LAUNCHERS)}"
        ) from None
