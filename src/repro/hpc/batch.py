"""Slurm-like batch system: node allocation for pilot jobs.

Pilots (:mod:`repro.pilot`) acquire resources by submitting *batch jobs*
that request whole nodes for a walltime.  This module models the machine's
batch scheduler: a FIFO queue with optional backfill, per-job queue-wait
noise, walltime enforcement and early release.

The model is deliberately simple -- the paper's experiments run inside a
single pilot allocation, so what matters is that (a) allocation consumes the
platform's finite nodes, (b) pilots see a realistic queue wait, and
(c) walltimes are enforced.  Backfill is the non-reserving "EASY-lite"
variant: when the queue head does not fit, any later job that fits the
current free set may start.  This can delay the head (no reservation); the
simplification is documented and tested.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set

from ..sim.engine import SimulationEngine
from ..sim.events import Event, Interrupt
from ..utils.ids import generate_id
from .platform import PlatformSpec

__all__ = ["JobState", "BatchJob", "BatchSystem"]


class JobState:
    """Lifecycle states for a batch job."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    TIMEOUT = "TIMEOUT"
    CANCELLED = "CANCELLED"
    FAILED = "FAILED"        # preempted / system fault, not user-initiated

    FINAL = (COMPLETED, TIMEOUT, CANCELLED, FAILED)


class BatchJob:
    """One node-level allocation request and its lifecycle."""

    def __init__(self, engine: SimulationEngine, n_nodes: int,
                 walltime_s: float, priority: int = 0) -> None:
        self.uid = generate_id("job")
        self.n_nodes = n_nodes
        self.walltime_s = walltime_s
        self.priority = priority
        self.state = JobState.PENDING
        self.node_indices: List[int] = []
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: triggers with the node index list when the allocation begins
        self.started: Event = engine.event()
        #: triggers with the final state string when the job ends
        self.finished: Event = engine.event()

    @property
    def is_final(self) -> bool:
        return self.state in JobState.FINAL

    def __repr__(self) -> str:
        return (f"<BatchJob {self.uid} {self.state} nodes={self.n_nodes} "
                f"wall={self.walltime_s}s>")


class BatchSystem:
    """The platform's batch scheduler (one per platform instance)."""

    def __init__(self, engine: SimulationEngine, spec: PlatformSpec, rng,
                 backfill: bool = True) -> None:
        self.engine = engine
        self.spec = spec
        self.rng = rng
        self.backfill = backfill
        self._free: Set[int] = set(range(spec.nodes))
        self._queue: List[BatchJob] = []
        self._running: dict = {}  # job -> walltime watchdog Process
        self._seq = itertools.count()

    # -- public API --------------------------------------------------------------
    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    def submit(self, n_nodes: int, walltime_s: float,
               priority: int = 0) -> BatchJob:
        """Enqueue an allocation request; returns the job handle."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if n_nodes > self.spec.nodes:
            raise ValueError(
                f"requested {n_nodes} nodes but {self.spec.name} has only "
                f"{self.spec.nodes}")
        if walltime_s <= 0:
            raise ValueError("walltime must be positive")
        job = BatchJob(self.engine, n_nodes, walltime_s, priority)
        job.submitted_at = self.engine.now
        self._queue.append(job)
        self._schedule_pass()
        return job

    def complete(self, job: BatchJob) -> None:
        """Release a running job's nodes before its walltime expires."""
        if job.state != JobState.RUNNING:
            raise RuntimeError(f"cannot complete job in state {job.state}")
        self._finish(job, JobState.COMPLETED)

    def fail(self, job: BatchJob) -> None:
        """Kill a running job from the system side (preemption, HW fault).

        Unlike :meth:`cancel` this is not a user action: the job finishes
        ``FAILED``, which pilot managers map to a failed (and therefore
        recoverable/resubmittable) pilot rather than a cancelled one.
        """
        if job.state != JobState.RUNNING:
            raise RuntimeError(f"cannot fail job in state {job.state}")
        self._finish(job, JobState.FAILED)

    def cancel(self, job: BatchJob) -> None:
        """Cancel a pending or running job."""
        if job.state == JobState.PENDING:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
            job.finished_at = self.engine.now
            job.finished.succeed(JobState.CANCELLED)
        elif job.state == JobState.RUNNING:
            self._finish(job, JobState.CANCELLED)
        elif job.is_final:
            pass  # idempotent
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"cannot cancel job in state {job.state}")

    # -- scheduling --------------------------------------------------------------
    def _schedule_pass(self) -> None:
        """Start every job allowed to run under FIFO(+backfill) right now."""
        progressed = True
        while progressed:
            progressed = False
            for pos, job in enumerate(list(self._queue)):
                if pos > 0 and not self.backfill:
                    break
                if job.n_nodes <= len(self._free):
                    self._queue.remove(job)
                    self._start(job)
                    progressed = True
                    break
                if pos == 0 and not self.backfill:
                    break

    def _start(self, job: BatchJob) -> None:
        # Sample a queue-resident delay (system noise) before nodes hand over.
        delay = 0.0
        if self.spec.queue_wait_scale_s > 0:
            delay = float(self.rng.exponential(self.spec.queue_wait_scale_s))
        nodes = sorted(self._free)[:job.n_nodes]
        self._free.difference_update(nodes)
        job.node_indices = nodes

        def bring_up():
            if delay:
                yield self.engine.timeout(delay)
            job.state = JobState.RUNNING
            job.started_at = self.engine.now
            job.started.succeed(list(nodes))
            timer = self.engine.timeout(job.walltime_s)
            job._wall_timer = timer
            try:
                yield timer
            except Interrupt:
                return  # completed/cancelled early; _finish already ran
            if job.state == JobState.RUNNING:
                self._finish(job, JobState.TIMEOUT, interrupt_watchdog=False)

        self._running[job] = self.engine.process(bring_up())

    def _finish(self, job: BatchJob, final_state: str,
                interrupt_watchdog: bool = True) -> None:
        job.state = final_state
        job.finished_at = self.engine.now
        self._free.update(job.node_indices)
        watchdog = self._running.pop(job, None)
        timer = getattr(job, "_wall_timer", None)
        if timer is not None and not timer.processed:
            timer.cancel()  # keep the event heap (and the clock) clean
        if watchdog is not None and interrupt_watchdog:
            watchdog.interrupt("job finished")
        job.finished.succeed(final_state)
        self._schedule_pass()
