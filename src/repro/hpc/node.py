"""Per-node resource accounting: core/GPU/memory slot management.

A :class:`NodeState` tracks which core and GPU indices are free on one node
of an allocation.  The agent scheduler (:mod:`repro.pilot.agent.scheduler`)
carves :class:`Slot` objects out of nodes and returns them on task
completion.  Invariant maintained throughout: a core/GPU index is held by at
most one live slot (verified by property-based tests).

Placement queries go through a **free-capacity index**: a segment tree over
the node array whose cells hold the per-subtree maxima of free cores, free
GPUs and free memory among *up* nodes.  ``find_fit`` descends the tree to
the leftmost fitting node instead of scanning every node, turning the
scheduler's placement hot path from O(nodes) into O(log nodes) while
preserving the exact first-fit scan order (including wrap-around starts and
the soft ``avoid`` deferral).  Node mutations (allocate / release / health
flips) push point updates into the tree through a change hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Slot", "NodeState", "NodeList", "FreeCapacityIndex"]


@dataclass(frozen=True)
class Slot:
    """A placement of one task/service rank on a node.

    ``cores`` and ``gpus`` hold the specific indices assigned, ``mem_gb``
    the reserved memory.  Slots are immutable; releasing goes through the
    owning :class:`NodeState`.
    """

    node_index: int
    node_name: str
    cores: Tuple[int, ...]
    gpus: Tuple[int, ...] = ()
    mem_gb: float = 0.0

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)


class NodeState:
    """Mutable free/busy accounting for one node.

    Nodes carry a *health* state driven by the resilience subsystem's fault
    injector: ``up`` (normal), ``degraded`` (draining -- running slots
    survive but no new slots are placed) and ``down`` (crashed -- the
    injector kills resident work; the node rejects placements until it is
    repaired after its MTTR).  Slot accounting is independent of health so
    a release on a down node keeps the books consistent for the repair.
    """

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"

    def __init__(self, index: int, name: str, cores: int, gpus: int,
                 mem_gb: float) -> None:
        self.index = index
        self.name = name
        self.num_cores = cores
        self.num_gpus = gpus
        self.mem_gb = mem_gb
        self.health = NodeState.UP
        self._free_cores: List[int] = list(range(cores))
        self._free_gpus: List[int] = list(range(gpus))
        self._free_mem = float(mem_gb)
        #: change hooks ``(node, kind)`` with kind in alloc | release |
        #: down | degraded | up -- registered by owning NodeLists (index
        #: maintenance) and schedulers (capacity-increase wakeups)
        self._listeners: List[Callable[["NodeState", str], None]] = []

    def _changed(self, kind: str) -> None:
        for listener in self._listeners:
            listener(self, kind)

    # -- health ----------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self.health == NodeState.UP

    def mark_down(self) -> None:
        """Crash the node: placements are rejected until :meth:`mark_up`."""
        self.health = NodeState.DOWN
        self._changed("down")

    def mark_degraded(self) -> None:
        """Drain the node: running slots survive, new placements skip it."""
        self.health = NodeState.DEGRADED
        self._changed("degraded")

    def mark_up(self) -> None:
        """Repair the node (end of MTTR window)."""
        self.health = NodeState.UP
        self._changed("up")

    # -- capacity queries ------------------------------------------------------
    @property
    def free_cores(self) -> int:
        return len(self._free_cores)

    @property
    def free_gpus(self) -> int:
        return len(self._free_gpus)

    @property
    def free_mem_gb(self) -> float:
        return self._free_mem

    def fits(self, cores: int, gpus: int = 0, mem_gb: float = 0.0) -> bool:
        """Can this node currently host the requested slot?"""
        return (self.health == NodeState.UP
                and len(self._free_cores) >= cores
                and len(self._free_gpus) >= gpus
                and self._free_mem >= mem_gb - 1e-9)

    # -- allocation ------------------------------------------------------------
    def allocate(self, cores: int, gpus: int = 0,
                 mem_gb: float = 0.0) -> Slot:
        """Carve a slot; raises RuntimeError if it does not fit."""
        if cores < 0 or gpus < 0 or mem_gb < 0:
            raise ValueError("resource amounts must be non-negative")
        if not self.fits(cores, gpus, mem_gb):
            raise RuntimeError(
                f"node {self.name}: cannot allocate {cores}c/{gpus}g/"
                f"{mem_gb}GB (free: {self.free_cores}c/{self.free_gpus}g/"
                f"{self._free_mem}GB)")
        core_ids = tuple(self._free_cores[:cores])
        del self._free_cores[:cores]
        gpu_ids = tuple(self._free_gpus[:gpus])
        del self._free_gpus[:gpus]
        self._free_mem -= mem_gb
        self._changed("alloc")
        return Slot(self.index, self.name, core_ids, gpu_ids, mem_gb)

    def release(self, slot: Slot) -> None:
        """Return a slot's resources; raises on double-release."""
        if slot.node_index != self.index:
            raise RuntimeError(
                f"slot for node {slot.node_index} released on node {self.index}")
        overlap_c = set(slot.cores) & set(self._free_cores)
        overlap_g = set(slot.gpus) & set(self._free_gpus)
        if overlap_c or overlap_g:
            raise RuntimeError(
                f"double release on node {self.name}: cores {overlap_c}, "
                f"gpus {overlap_g} already free")
        self._free_cores.extend(slot.cores)
        self._free_cores.sort()
        self._free_gpus.extend(slot.gpus)
        self._free_gpus.sort()
        self._free_mem = min(self.mem_gb, self._free_mem + slot.mem_gb)
        self._changed("release")

    def release_many(self, slots: List[Slot]) -> None:
        """Return many slots' resources with one change notification.

        End-state equivalent to sequential :meth:`release` calls (same
        double-release detection, including overlaps *between* the given
        slots) but the free id lists are rebuilt and sorted once and
        listeners fire once for the whole group -- a scheduler draining a
        dispatch batch pays one capacity-index update per touched node
        instead of one per slot.  Unlike the sequential loop the batch is
        atomic: on a double-release nothing has been returned.
        """
        if len(slots) == 1:
            self.release(slots[0])
            return
        free_c = set(self._free_cores)
        free_g = set(self._free_gpus)
        mem = 0.0
        for slot in slots:
            if slot.node_index != self.index:
                raise RuntimeError(
                    f"slot for node {slot.node_index} released on node "
                    f"{self.index}")
            overlap_c = free_c.intersection(slot.cores)
            overlap_g = free_g.intersection(slot.gpus)
            if overlap_c or overlap_g:
                raise RuntimeError(
                    f"double release on node {self.name}: cores "
                    f"{overlap_c}, gpus {overlap_g} already free")
            free_c.update(slot.cores)
            free_g.update(slot.gpus)
            mem += slot.mem_gb
        self._free_cores = sorted(free_c)
        self._free_gpus = sorted(free_g)
        self._free_mem = min(self.mem_gb, self._free_mem + mem)
        self._changed("release")

    def __repr__(self) -> str:
        return (f"<NodeState {self.name} free={self.free_cores}c/"
                f"{self.free_gpus}g/{self._free_mem:.0f}GB>")


class FreeCapacityIndex:
    """Segment tree over a node array answering first-fit queries fast.

    Each tree cell holds the maxima of (free cores, free GPUs, free memory)
    among *up* nodes in its span; down/degraded nodes contribute ``-1`` so
    they can never satisfy a query.  :meth:`first_fit` returns the leftmost
    index in ``[lo, hi)`` whose node currently fits a request -- identical
    to a linear ``NodeState.fits`` scan, in O(log n) typical time.

    The conjunction of three per-component maxima can report a subtree as
    promising when no single node in it satisfies all three bounds at once;
    the descent then visits and rejects that subtree's children.  With the
    homogeneous node pools of real allocations this is rare, and the worst
    case degenerates to the old linear scan, never worse.

    *offset* lets an index cover a contiguous slice of a larger node array
    (a scheduler shard): leaf position ``i`` then maps to the node whose
    global ``index`` is ``offset + i``.  All ``lo``/``hi`` query bounds and
    returned positions stay in local (slice) coordinates.
    """

    _MEM_EPS = 1e-9  # mirrors NodeState.fits' float-resolution slack

    def __init__(self, nodes: List[NodeState], offset: int = 0) -> None:
        self._nodes = nodes
        self._offset = offset
        n = len(nodes)
        size = 1
        while size < max(n, 1):
            size *= 2
        self._size = size
        self._mc = [-1] * (2 * size)      # max free cores per cell
        self._mg = [-1] * (2 * size)      # max free GPUs per cell
        self._mm = [-1.0] * (2 * size)    # max free mem (GB) per cell
        for i, node in enumerate(nodes):
            self._write_leaf(i, node)
        for cell in range(size - 1, 0, -1):
            self._pull(cell)

    def _write_leaf(self, i: int, node: NodeState) -> None:
        cell = self._size + i
        if node.health == NodeState.UP:
            self._mc[cell] = len(node._free_cores)
            self._mg[cell] = len(node._free_gpus)
            self._mm[cell] = node._free_mem
        else:
            self._mc[cell] = -1
            self._mg[cell] = -1
            self._mm[cell] = -1.0

    def _pull(self, cell: int) -> None:
        left, right = 2 * cell, 2 * cell + 1
        self._mc[cell] = self._mc[left] if self._mc[left] >= self._mc[right] \
            else self._mc[right]
        self._mg[cell] = self._mg[left] if self._mg[left] >= self._mg[right] \
            else self._mg[right]
        self._mm[cell] = self._mm[left] if self._mm[left] >= self._mm[right] \
            else self._mm[right]

    def update(self, node: NodeState, _kind: str = "") -> None:
        """Point-update one node's leaf and its ancestors.

        O(log n) worst case, but the climb stops at the first ancestor
        whose maxima are unchanged (allocating a few cores on one node of
        a mostly-free pool rarely moves an upper-level maximum), which
        makes the common case O(1) amortised on the placement hot path.
        """
        self._write_leaf(node.index - self._offset, node)
        mc, mg, mm = self._mc, self._mg, self._mm
        cell = (self._size + node.index - self._offset) // 2
        while cell >= 1:
            left, right = 2 * cell, 2 * cell + 1
            nc = mc[left] if mc[left] >= mc[right] else mc[right]
            ng = mg[left] if mg[left] >= mg[right] else mg[right]
            nm = mm[left] if mm[left] >= mm[right] else mm[right]
            if nc == mc[cell] and ng == mg[cell] and nm == mm[cell]:
                return
            mc[cell] = nc
            mg[cell] = ng
            mm[cell] = nm
            cell //= 2

    def root_qualifies(self, cores: int, gpus: int = 0,
                       mem_gb: float = 0.0) -> bool:
        """Could *some* up node currently host one rank of this request?

        O(1) necessary-condition check against the root maxima: when it
        fails, no single node in the span fits the rank, so a multi-rank
        request cannot place either.  Schedulers use this to keep parked
        shapes asleep across capacity increases that cannot help them.
        """
        return self._qualifies(1, cores, gpus, mem_gb)

    def _qualifies(self, cell: int, cores: int, gpus: int,
                   mem_gb: float) -> bool:
        return (self._mc[cell] >= cores and self._mg[cell] >= gpus
                and self._mm[cell] >= mem_gb - self._MEM_EPS)

    def first_fit(self, cores: int, gpus: int = 0, mem_gb: float = 0.0,
                  lo: int = 0, hi: Optional[int] = None) -> int:
        """Leftmost node index in ``[lo, hi)`` that fits, or ``-1``."""
        n = len(self._nodes)
        hi = n if hi is None else hi
        if lo >= hi or not self._qualifies(1, cores, gpus, mem_gb):
            return -1
        # Descend depth-first, leftmost child first; prune subtrees whose
        # span misses [lo, hi) or whose maxima cannot satisfy the request.
        stack = [(1, 0, self._size)]
        while stack:
            cell, span_lo, span_hi = stack.pop()
            if span_hi <= lo or span_lo >= hi:
                continue
            if not self._qualifies(cell, cores, gpus, mem_gb):
                continue
            if cell >= self._size:  # leaf
                i = cell - self._size
                if i < n and self._nodes[i].fits(cores, gpus, mem_gb):
                    return i
                continue
            mid = (span_lo + span_hi) // 2
            stack.append((2 * cell + 1, mid, span_hi))  # right: popped last
            stack.append((2 * cell, span_lo, mid))      # left: popped first
        return -1


class NodeList:
    """An ordered collection of :class:`NodeState` with search helpers.

    Wrapping nodes in a NodeList attaches a :class:`FreeCapacityIndex` so
    placement queries stop scanning the full array; the list is fixed-size
    after construction.
    """

    def __init__(self, nodes: List[NodeState]) -> None:
        self.nodes = list(nodes)
        # The runtime indexes nodes by Slot.node_index everywhere
        # (scheduler release, colocation pins, the capacity index's leaf
        # addressing), so node.index must equal list position; fail loudly
        # on subset/reordered lists instead of corrupting silently.
        for pos, node in enumerate(self.nodes):
            if node.index != pos:
                raise ValueError(
                    f"node {node.name} has index {node.index} at list "
                    f"position {pos}; NodeList requires dense, in-order "
                    f"node indices")
        self._index = FreeCapacityIndex(self.nodes)
        for node in self.nodes:
            node._listeners.append(self._index.update)
        #: distinct static (cores, gpus, mem) profiles for O(1) feasibility
        self._profiles = sorted({(n.num_cores, n.num_gpus, n.mem_gb)
                                 for n in self.nodes}, reverse=True)
        self._total_cores = sum(n.num_cores for n in self.nodes)
        self._total_gpus = sum(n.num_gpus for n in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, idx: int) -> NodeState:
        return self.nodes[idx]

    @classmethod
    def build(cls, count: int, cores: int, gpus: int, mem_gb: float,
              name_prefix: str = "node") -> "NodeList":
        """Construct *count* identical nodes."""
        return cls([
            NodeState(i, f"{name_prefix}{i:05d}", cores, gpus, mem_gb)
            for i in range(count)
        ])

    def detach_index(self) -> None:
        """Drop the list-wide capacity index and its node listeners.

        A sharded scheduler maintains one :class:`FreeCapacityIndex` per
        node partition; the list-wide index would then be dead weight
        updated on every allocate/release.  Detaching removes that cost.
        The index is rebuilt lazily (from live node state, so it is
        exact) if :meth:`find_fit` / :meth:`root_qualifies` are used
        again later.  Idempotent.
        """
        if self._index is None:
            return
        update = self._index.update
        for node in self.nodes:
            node._listeners.remove(update)
        self._index = None

    def _ensure_index(self) -> FreeCapacityIndex:
        if self._index is None:
            self._index = FreeCapacityIndex(self.nodes)
            for node in self.nodes:
                node._listeners.append(self._index.update)
        return self._index

    def find_fit(self, cores: int, gpus: int = 0, mem_gb: float = 0.0,
                 start: int = 0,
                 avoid: Optional[set] = None) -> Optional[NodeState]:
        """First-fit search starting at index *start* (wraps around).

        *avoid* is a soft blacklist of node names (failed-node memory of
        the retry policy): avoided nodes are skipped on the first pass and
        reconsidered only when nothing else fits.

        Served by the free-capacity index: instead of probing every node in
        scan order, the segment tree jumps to the next fitting index, so a
        fully-packed 2048-node allocation answers "nothing fits" in O(1)
        from the root maxima.  The returned node is always identical to
        what the seed's linear scan would have picked.
        """
        index = self._ensure_index()
        deferred: Optional[NodeState] = None
        n = len(self.nodes)
        for lo, hi in ((start, n), (0, start)):
            pos = lo
            while True:
                i = index.first_fit(cores, gpus, mem_gb, pos, hi)
                if i < 0:
                    break
                node = self.nodes[i]
                if avoid and node.name in avoid:
                    deferred = deferred or node
                    pos = i + 1
                    continue
                return node
        return deferred

    def root_qualifies(self, cores: int, gpus: int = 0,
                       mem_gb: float = 0.0) -> bool:
        """O(1) check that some up node might fit one rank right now.

        See :meth:`FreeCapacityIndex.root_qualifies` -- necessary, not
        sufficient, which is exactly what wake filtering needs.
        """
        return self._ensure_index().root_qualifies(cores, gpus, mem_gb)

    def can_ever_fit(self, cores: int, gpus: int = 0,
                     mem_gb: float = 0.0) -> bool:
        """Could any node host this rank when completely empty?

        Static-capacity check over the distinct node profiles (O(1) for
        homogeneous pools), independent of current health or load.
        """
        return any(pc >= cores and pg >= gpus and pm >= mem_gb - 1e-9
                   for pc, pg, pm in self._profiles)

    @property
    def total_cores(self) -> int:
        """Static core capacity across all nodes."""
        return self._total_cores

    @property
    def total_gpus(self) -> int:
        """Static GPU capacity across all nodes."""
        return self._total_gpus

    @property
    def up_count(self) -> int:
        """Nodes currently accepting placements."""
        return sum(1 for n in self.nodes if n.is_up)

    @property
    def total_free_cores(self) -> int:
        return sum(n.free_cores for n in self.nodes)

    @property
    def total_free_gpus(self) -> int:
        return sum(n.free_gpus for n in self.nodes)
