"""Per-node resource accounting: core/GPU/memory slot management.

A :class:`NodeState` tracks which core and GPU indices are free on one node
of an allocation.  The agent scheduler (:mod:`repro.pilot.agent.scheduler`)
carves :class:`Slot` objects out of nodes and returns them on task
completion.  Invariant maintained throughout: a core/GPU index is held by at
most one live slot (verified by property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Slot", "NodeState", "NodeList"]


@dataclass(frozen=True)
class Slot:
    """A placement of one task/service rank on a node.

    ``cores`` and ``gpus`` hold the specific indices assigned, ``mem_gb``
    the reserved memory.  Slots are immutable; releasing goes through the
    owning :class:`NodeState`.
    """

    node_index: int
    node_name: str
    cores: Tuple[int, ...]
    gpus: Tuple[int, ...] = ()
    mem_gb: float = 0.0

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)


class NodeState:
    """Mutable free/busy accounting for one node.

    Nodes carry a *health* state driven by the resilience subsystem's fault
    injector: ``up`` (normal), ``degraded`` (draining -- running slots
    survive but no new slots are placed) and ``down`` (crashed -- the
    injector kills resident work; the node rejects placements until it is
    repaired after its MTTR).  Slot accounting is independent of health so
    a release on a down node keeps the books consistent for the repair.
    """

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"

    def __init__(self, index: int, name: str, cores: int, gpus: int,
                 mem_gb: float) -> None:
        self.index = index
        self.name = name
        self.num_cores = cores
        self.num_gpus = gpus
        self.mem_gb = mem_gb
        self.health = NodeState.UP
        self._free_cores: List[int] = list(range(cores))
        self._free_gpus: List[int] = list(range(gpus))
        self._free_mem = float(mem_gb)

    # -- health ----------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self.health == NodeState.UP

    def mark_down(self) -> None:
        """Crash the node: placements are rejected until :meth:`mark_up`."""
        self.health = NodeState.DOWN

    def mark_degraded(self) -> None:
        """Drain the node: running slots survive, new placements skip it."""
        self.health = NodeState.DEGRADED

    def mark_up(self) -> None:
        """Repair the node (end of MTTR window)."""
        self.health = NodeState.UP

    # -- capacity queries ------------------------------------------------------
    @property
    def free_cores(self) -> int:
        return len(self._free_cores)

    @property
    def free_gpus(self) -> int:
        return len(self._free_gpus)

    @property
    def free_mem_gb(self) -> float:
        return self._free_mem

    def fits(self, cores: int, gpus: int = 0, mem_gb: float = 0.0) -> bool:
        """Can this node currently host the requested slot?"""
        return (self.health == NodeState.UP
                and len(self._free_cores) >= cores
                and len(self._free_gpus) >= gpus
                and self._free_mem >= mem_gb - 1e-9)

    # -- allocation ------------------------------------------------------------
    def allocate(self, cores: int, gpus: int = 0,
                 mem_gb: float = 0.0) -> Slot:
        """Carve a slot; raises RuntimeError if it does not fit."""
        if cores < 0 or gpus < 0 or mem_gb < 0:
            raise ValueError("resource amounts must be non-negative")
        if not self.fits(cores, gpus, mem_gb):
            raise RuntimeError(
                f"node {self.name}: cannot allocate {cores}c/{gpus}g/"
                f"{mem_gb}GB (free: {self.free_cores}c/{self.free_gpus}g/"
                f"{self._free_mem}GB)")
        core_ids = tuple(self._free_cores[:cores])
        del self._free_cores[:cores]
        gpu_ids = tuple(self._free_gpus[:gpus])
        del self._free_gpus[:gpus]
        self._free_mem -= mem_gb
        return Slot(self.index, self.name, core_ids, gpu_ids, mem_gb)

    def release(self, slot: Slot) -> None:
        """Return a slot's resources; raises on double-release."""
        if slot.node_index != self.index:
            raise RuntimeError(
                f"slot for node {slot.node_index} released on node {self.index}")
        overlap_c = set(slot.cores) & set(self._free_cores)
        overlap_g = set(slot.gpus) & set(self._free_gpus)
        if overlap_c or overlap_g:
            raise RuntimeError(
                f"double release on node {self.name}: cores {overlap_c}, "
                f"gpus {overlap_g} already free")
        self._free_cores.extend(slot.cores)
        self._free_cores.sort()
        self._free_gpus.extend(slot.gpus)
        self._free_gpus.sort()
        self._free_mem = min(self.mem_gb, self._free_mem + slot.mem_gb)

    def __repr__(self) -> str:
        return (f"<NodeState {self.name} free={self.free_cores}c/"
                f"{self.free_gpus}g/{self._free_mem:.0f}GB>")


class NodeList:
    """An ordered collection of :class:`NodeState` with search helpers."""

    def __init__(self, nodes: List[NodeState]) -> None:
        self.nodes = list(nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, idx: int) -> NodeState:
        return self.nodes[idx]

    @classmethod
    def build(cls, count: int, cores: int, gpus: int, mem_gb: float,
              name_prefix: str = "node") -> "NodeList":
        """Construct *count* identical nodes."""
        return cls([
            NodeState(i, f"{name_prefix}{i:05d}", cores, gpus, mem_gb)
            for i in range(count)
        ])

    def find_fit(self, cores: int, gpus: int = 0, mem_gb: float = 0.0,
                 start: int = 0,
                 avoid: Optional[set] = None) -> Optional[NodeState]:
        """First-fit search starting at index *start* (wraps around).

        *avoid* is a soft blacklist of node names (failed-node memory of
        the retry policy): avoided nodes are skipped on the first pass and
        reconsidered only when nothing else fits.
        """
        n = len(self.nodes)
        deferred: Optional[NodeState] = None
        for off in range(n):
            node = self.nodes[(start + off) % n]
            if node.fits(cores, gpus, mem_gb):
                if avoid and node.name in avoid:
                    deferred = deferred or node
                    continue
                return node
        return deferred

    @property
    def up_count(self) -> int:
        """Nodes currently accepting placements."""
        return sum(1 for n in self.nodes if n.is_up)

    @property
    def total_free_cores(self) -> int:
        return sum(n.free_cores for n in self.nodes)

    @property
    def total_free_gpus(self) -> int:
        return sum(n.free_gpus for n in self.nodes)
