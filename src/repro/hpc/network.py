"""Network fabric: latency and bandwidth between and within platforms.

The service client/server exchanges of the paper are dominated by network
latency for NOOP inference (§IV-C) -- local inter-node latency is measured
at 0.063 +/- 0.014 ms, remote (Delta <-> R3) node-to-node latency at
0.47 +/- 0.04 ms.  The :class:`Fabric` reproduces exactly these one-way
delay distributions and adds a bandwidth term for bulk data staging
(Globus-style transfers in the Cell Painting pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .platform import LatencySpec, PlatformSpec

__all__ = ["Route", "Fabric", "DEFAULT_WAN_LATENCY", "DEFAULT_WAN_BANDWIDTH_GBPS"]

#: Paper §IV-C: node-to-node latency between Delta and R3.
DEFAULT_WAN_LATENCY = LatencySpec(mean_ms=0.47, std_ms=0.04)
#: Sustained wide-area transfer bandwidth (Globus-managed, GB/s).
DEFAULT_WAN_BANDWIDTH_GBPS = 1.0


@dataclass(frozen=True)
class Route:
    """Latency/bandwidth between two endpoints (platform pair)."""

    latency: LatencySpec
    bandwidth_gbps: float = DEFAULT_WAN_BANDWIDTH_GBPS

    def transfer_time(self, nbytes: float, rng) -> float:
        """Seconds to move *nbytes*: one-way latency + serialisation time."""
        lat = float(self.latency.sample(rng))
        return lat + nbytes / (self.bandwidth_gbps * 1e9)


class Fabric:
    """Pairwise communication model over a set of platforms.

    Routes are symmetric.  Intra-platform routes default to the platform's
    own ``intra_latency``; inter-platform routes default to the paper's WAN
    numbers and can be overridden per pair.
    """

    def __init__(self, rng) -> None:
        self._rng = rng
        self._platforms: Dict[str, PlatformSpec] = {}
        self._routes: Dict[Tuple[str, str], Route] = {}

    # -- topology --------------------------------------------------------------
    def add_platform(self, spec: PlatformSpec,
                     local_bandwidth_gbps: float = 25.0) -> None:
        """Register a platform; creates its intra-platform route."""
        self._platforms[spec.name] = spec
        self._routes[(spec.name, spec.name)] = Route(
            latency=spec.intra_latency, bandwidth_gbps=local_bandwidth_gbps)

    def set_route(self, a: str, b: str, latency: LatencySpec,
                  bandwidth_gbps: float = DEFAULT_WAN_BANDWIDTH_GBPS) -> None:
        """Define/override the route between platforms *a* and *b*."""
        route = Route(latency=latency, bandwidth_gbps=bandwidth_gbps)
        self._routes[self._key(a, b)] = route

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def route(self, a: str, b: str) -> Route:
        """Resolve the route between two platforms (WAN default if unset)."""
        if a == b:
            try:
                return self._routes[(a, a)]
            except KeyError:
                raise KeyError(f"platform {a!r} not registered") from None
        known = self._routes.get(self._key(a, b))
        if known is not None:
            return known
        if a not in self._platforms or b not in self._platforms:
            missing = [p for p in (a, b) if p not in self._platforms]
            raise KeyError(f"platform(s) not registered: {missing}")
        # Materialise (and cache) the WAN default so repeat lookups are
        # stable object identities.
        route = Route(latency=DEFAULT_WAN_LATENCY,
                      bandwidth_gbps=DEFAULT_WAN_BANDWIDTH_GBPS)
        self._routes[self._key(a, b)] = route
        return route

    # -- sampling ----------------------------------------------------------------
    def latency(self, a: str, b: str) -> float:
        """Sample a one-way message latency (seconds) between *a* and *b*."""
        return float(self.route(a, b).latency.sample(self._rng))

    def transfer_time(self, a: str, b: str, nbytes: float) -> float:
        """Seconds to move *nbytes* of payload between *a* and *b*."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.route(a, b).transfer_time(nbytes, self._rng)

    def is_local(self, a: str, b: str) -> bool:
        return a == b

    def platforms(self):
        return dict(self._platforms)
