"""Network fabric: latency and bandwidth between and within platforms.

The service client/server exchanges of the paper are dominated by network
latency for NOOP inference (§IV-C) -- local inter-node latency is measured
at 0.063 +/- 0.014 ms, remote (Delta <-> R3) node-to-node latency at
0.47 +/- 0.04 ms.  The :class:`Fabric` reproduces exactly these one-way
delay distributions and adds a bandwidth term for bulk data staging
(Globus-style transfers in the Cell Painting pipeline).

Bulk staging additionally needs a *contention* model: two 1 TB transfers on
the same WAN link do not each see the full pipe.  :class:`SharedLink` is the
engine-backed shared-bandwidth model -- concurrent flows fair-share the
link's capacity, with per-flow progress rebalanced whenever a flow joins or
leaves.  The data subsystem (:mod:`repro.data.transfers`) instantiates one
per fabric route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.events import Event, Timeout
from .platform import LatencySpec, PlatformSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import SimulationEngine

__all__ = ["Route", "Fabric", "SharedLink", "DEFAULT_WAN_LATENCY",
           "DEFAULT_WAN_BANDWIDTH_GBPS"]

#: Paper §IV-C: node-to-node latency between Delta and R3.
DEFAULT_WAN_LATENCY = LatencySpec(mean_ms=0.47, std_ms=0.04)
#: Sustained wide-area transfer bandwidth (Globus-managed, GB/s).
DEFAULT_WAN_BANDWIDTH_GBPS = 1.0


@dataclass(frozen=True)
class Route:
    """Latency/bandwidth between two endpoints (platform pair)."""

    latency: LatencySpec
    bandwidth_gbps: float = DEFAULT_WAN_BANDWIDTH_GBPS

    def transfer_time(self, nbytes: float, rng) -> float:
        """Seconds to move *nbytes*: one-way latency + serialisation time."""
        lat = float(self.latency.sample(rng))
        return lat + nbytes / (self.bandwidth_gbps * 1e9)


class Fabric:
    """Pairwise communication model over a set of platforms.

    Routes are symmetric.  Intra-platform routes default to the platform's
    own ``intra_latency``; inter-platform routes default to the paper's WAN
    numbers and can be overridden per pair.
    """

    def __init__(self, rng) -> None:
        self._rng = rng
        self._platforms: Dict[str, PlatformSpec] = {}
        self._routes: Dict[Tuple[str, str], Route] = {}

    # -- topology --------------------------------------------------------------
    def add_platform(self, spec: PlatformSpec,
                     local_bandwidth_gbps: float = 25.0) -> None:
        """Register a platform; creates its intra-platform route."""
        self._platforms[spec.name] = spec
        self._routes[(spec.name, spec.name)] = Route(
            latency=spec.intra_latency, bandwidth_gbps=local_bandwidth_gbps)

    def set_route(self, a: str, b: str, latency: LatencySpec,
                  bandwidth_gbps: float = DEFAULT_WAN_BANDWIDTH_GBPS) -> None:
        """Define/override the route between platforms *a* and *b*."""
        route = Route(latency=latency, bandwidth_gbps=bandwidth_gbps)
        self._routes[self._key(a, b)] = route

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def route(self, a: str, b: str) -> Route:
        """Resolve the route between two platforms (WAN default if unset)."""
        if a == b:
            try:
                return self._routes[(a, a)]
            except KeyError:
                raise KeyError(f"platform {a!r} not registered") from None
        known = self._routes.get(self._key(a, b))
        if known is not None:
            return known
        if a not in self._platforms or b not in self._platforms:
            missing = [p for p in (a, b) if p not in self._platforms]
            raise KeyError(f"platform(s) not registered: {missing}")
        # Materialise (and cache) the WAN default so repeat lookups are
        # stable object identities.
        route = Route(latency=DEFAULT_WAN_LATENCY,
                      bandwidth_gbps=DEFAULT_WAN_BANDWIDTH_GBPS)
        self._routes[self._key(a, b)] = route
        return route

    # -- sampling ----------------------------------------------------------------
    def latency(self, a: str, b: str) -> float:
        """Sample a one-way message latency (seconds) between *a* and *b*."""
        return float(self.route(a, b).latency.sample(self._rng))

    def transfer_time(self, a: str, b: str, nbytes: float) -> float:
        """Seconds to move *nbytes* of payload between *a* and *b*."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.route(a, b).transfer_time(nbytes, self._rng)

    def is_local(self, a: str, b: str) -> bool:
        return a == b

    def platforms(self):
        return dict(self._platforms)


class _Flow:
    """One active transfer on a :class:`SharedLink`."""

    __slots__ = ("remaining", "done", "started", "nbytes")

    def __init__(self, nbytes: float, done: Event, started: float) -> None:
        self.nbytes = nbytes
        self.remaining = nbytes
        self.done = done
        self.started = started


class SharedLink:
    """A link whose bandwidth is fair-shared among concurrent flows.

    Classic processor-sharing fluid model: with *n* active flows each
    progresses at ``bandwidth / n``.  Whenever a flow joins or completes the
    per-flow rate changes, so accumulated progress is settled and the next
    completion re-derived -- concurrent transfers slow each other down
    instead of teleporting for free.

    ``transfer`` returns an event that succeeds (with the flow's total
    duration on the link) once the bytes have drained.  Zero-byte flows
    complete immediately.
    """

    #: residual bytes below which a flow counts as drained (float slack)
    _EPS_BYTES = 1e-3

    def __init__(self, engine: "SimulationEngine", bandwidth_gbps: float,
                 name: str = "") -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        self.engine = engine
        self.name = name
        self.rate_bps = bandwidth_gbps * 1e9  # bytes/second
        self._flows: List[_Flow] = []
        self._last_settle = engine.now
        self._timer: Optional[Timeout] = None
        #: lifetime stats
        self.bytes_total = 0.0
        self.flows_total = 0
        self.peak_concurrency = 0

    # -- introspection -----------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def flow_rate_bps(self) -> float:
        """Bytes/second currently seen by each active flow."""
        return self.rate_bps / max(1, len(self._flows))

    def eta(self, nbytes: float) -> float:
        """Seconds a new *nbytes* flow would take if admitted now.

        Contention-aware first-order estimate: assumes the current flow
        count (plus the new flow) persists; used for replica selection.
        """
        return nbytes * (len(self._flows) + 1) / self.rate_bps

    # -- transfers ---------------------------------------------------------------
    def transfer(self, nbytes: float) -> Event:
        """Admit a flow of *nbytes*; returns its completion event."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = Event(self.engine)
        self._settle()
        self._flows.append(_Flow(float(nbytes), done, self.engine.now))
        self.flows_total += 1
        self.bytes_total += float(nbytes)
        self.peak_concurrency = max(self.peak_concurrency, len(self._flows))
        self._reschedule()
        return done

    def interrupt_all(self, make_exc) -> int:
        """Fail every active flow (a link flap); returns the victim count.

        ``make_exc(flow)`` builds the exception each flow's completion
        event fails with -- waiters (transfer processes) observe it as a
        raised error and surface it as ``TransferAborted`` to staging.
        Failed events are defused so an already-detached waiter cannot
        crash the engine.
        """
        self._settle()
        victims, self._flows = self._flows, []
        for flow in victims:
            self.bytes_total -= flow.remaining  # undelivered bytes
            flow.done.fail(make_exc(flow))
            flow.done.defuse()
        self._reschedule()
        return len(victims)

    def abort(self, done: Event) -> bool:
        """Withdraw the flow identified by its completion event.

        Used when a staging process is cancelled mid-transfer: the flow
        stops consuming link bandwidth immediately (survivors speed up) and
        its event never triggers.  Returns True if the flow was active.
        """
        for flow in self._flows:
            if flow.done is done:
                self._settle()
                self._flows.remove(flow)
                self.bytes_total -= flow.remaining  # undelivered bytes
                self._reschedule()
                return True
        return False

    # -- fluid accounting --------------------------------------------------------
    def _settle(self) -> None:
        """Charge progress accumulated since the last rate change."""
        now = self.engine.now
        if self._flows:
            drained = (now - self._last_settle) * self.flow_rate_bps
            for flow in self._flows:
                flow.remaining = max(0.0, flow.remaining - drained)
        self._last_settle = now

    def _drain_eps(self) -> float:
        """Residual bytes below which a flow counts as done.

        Scaled to the clock's float resolution at the current timestamp:
        a residue whose serialisation time cannot advance ``engine.now``
        (``now + eta == now`` in float64) would re-arm a zero-progress
        timer forever, so it is absorbed instead.
        """
        resolution = 4 * math.ulp(max(1.0, self.engine.now))
        return max(self._EPS_BYTES, self.flow_rate_bps * resolution)

    def _reschedule(self) -> None:
        """Complete drained flows and re-arm the next-completion timer."""
        if self._timer is not None and not self._timer.processed \
                and not self._timer._cancelled:
            self._timer.cancel()
        self._timer = None
        eps = self._drain_eps()
        for flow in [f for f in self._flows if f.remaining <= eps]:
            self._flows.remove(flow)
            flow.done.succeed(self.engine.now - flow.started)
        if not self._flows:
            return
        eta = min(f.remaining for f in self._flows) / self.flow_rate_bps
        self._timer = self.engine.timeout(eta)
        self._timer.callbacks.append(self._on_timer)

    def _on_timer(self, event: Event) -> None:
        if event is not self._timer:  # superseded by a later rebalance
            return
        self._settle()
        self._reschedule()

    def __repr__(self) -> str:
        return (f"<SharedLink {self.name or '?'} flows={len(self._flows)} "
                f"bw={self.rate_bps / 1e9:.1f}GB/s>")
