#!/usr/bin/env python3
"""Signature Detection pipeline (use case II-B) with an LLM service.

15 irradiated samples -> VCF generation & VEP-style annotation -> pathway
enrichment -> dose-response fits, finishing with an LLM-generated signature
summary served by a llama-8b service running on the pilot.

Run:  python examples/signature_detection.py
"""

from repro import (
    PilotDescription,
    PilotManager,
    ServiceDescription,
    ServiceManager,
    Session,
    TaskManager,
)
from repro.analytics import ReportBuilder
from repro.workflows import (
    SignatureConfig,
    WorkflowRunner,
    build_signature_pipeline,
)


def main() -> None:
    config = SignatureConfig(n_samples=15, variants_per_sample=400,
                             max_dose_gy=2.0, seed=11)

    with Session(seed=11) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        smgr = ServiceManager(session, registry_platform="delta")
        (pilot,) = pmgr.submit_pilots(
            PilotDescription(resource="delta", nodes=2, runtime_s=1e7))
        tmgr.add_pilots(pilot)

        (llm,) = smgr.start_services(
            ServiceDescription(model="llama-8b"), pilot)
        session.run(until=llm.ready)

        runner = WorkflowRunner(session, tmgr)
        pipeline = build_signature_pipeline(config,
                                            llm_targets=[llm.address])
        proc = session.engine.process(runner.run_pipeline(pipeline))
        context = session.run(until=proc)
        smgr.stop_services(llm)
        session.run(until=llm.stopped)

    result = context["result"]
    report = ReportBuilder("Signature Detection -- radiation-induced "
                           "mutational patterns")
    rows = [[a.sample_id, f"{a.dose_gy:.2f}", a.n_variants,
             f"{a.ct_fraction:.3f}",
             len(result.significant_by_sample[a.sample_id])]
            for a in result.annotations]
    report.add_table(["sample", "dose (Gy)", "variants", "C>T fraction",
                      "#significant pathways"], rows,
                     title="Per-sample annotation & enrichment")
    report.add_kv({
        "planted radiation pathways":
            ", ".join(result.planted_radiation_pathways),
        "recovered in high-dose samples":
            ", ".join(result.recovered_radiation_pathways) or "(none)",
        "recovery recall": f"{result.recovery_recall:.2f}",
        "linear dose-response slope":
            f"{result.linear_fit.params['slope']:.3f} "
            f"(p={result.linear_fit.p_value:.2e}, "
            f"R2={result.linear_fit.r_squared:.2f})",
        "hill fit EC50": f"{result.hill_fit.params['ec50']:.2f} Gy "
                         f"(R2={result.hill_fit.r_squared:.2f})",
    }, title="Dose-response analysis:")
    if result.llm_summaries:
        report.add_text("LLM signature summary (served model):\n  "
                        + result.llm_summaries[0][:200] + "...")
    report.print()


if __name__ == "__main__":
    main()
