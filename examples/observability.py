#!/usr/bin/env python3
"""Live telemetry: trace a campaign, sample metrics, catch a straggler.

Runs a two-node campaign (one deliberately 10x-slow task injected) with
all three observability planes on, then:

* writes ``campaign_trace.json`` -- open it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` to see each task's
  lifecycle phases nested under its campaign node;
* prints the sampled metric series (pending depth, utilization, frontier
  size) and the latency/grant histograms;
* prints the anomaly log -- the injected straggler shows up flagged
  against the rolling median of its resource shape;
* prints the live-dashboard postmortem: final instrument values plus the
  performance attribution -- phase totals, the critical path (which pins
  the straggler's ``execute`` phase), and what-if makespan lower bounds.

Run:  python examples/observability.py
"""

from repro import (
    ObservabilityConfig,
    PilotDescription,
    PilotManager,
    Session,
    TaskManager,
)
from repro.analytics import ReportBuilder
from repro.pilot.description import TaskDescription
from repro.workflows import CampaignGraph, TaskNode


def sim_task(name, duration):
    return TaskDescription(name=name, executable="sim",
                           duration_s=float(duration))


def build_graph():
    """simulate -> analyze, with one 10x straggler among the simulations."""
    return CampaignGraph(name="study", nodes=[
        TaskNode(name="simulate",
                 build=lambda c: [sim_task(f"sim{i}", 8.0)
                                  for i in range(7)]
                 + [sim_task("sim-straggler", 80.0)]),
        TaskNode(name="analyze", deps=("simulate",),
                 build=lambda c: [sim_task(f"ana{i}", 5.0)
                                  for i in range(4)]),
    ])


def main() -> None:
    config = ObservabilityConfig(sample_interval_s=5.0, dashboard=True,
                                 dashboard_interval_s=30.0)
    with Session(seed=9, observability=config) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        (pilot,) = pmgr.submit_pilots(
            PilotDescription(resource="delta", nodes=2, runtime_s=1e7))
        tmgr.add_pilots(pilot)
        runner = session.campaign_runner(tmgr)

        proc = session.engine.process(runner.run_campaign([build_graph()]))
        session.run(until=proc)
        makespan = session.now
        session.quiesce()       # final metric sample lands at drain time
        session.run()

        obs = session.observability
        n_spans = obs.tracer.to_chrome_trace("campaign_trace.json")

        report = ReportBuilder("Telemetry plane -- one campaign, traced")
        report.add_kv({
            "spans exported": n_spans,
            "trace file": "campaign_trace.json (open in Perfetto)",
            "metric samples": len(obs.metrics.sample_times),
            "makespan": f"{makespan:.1f} s",
        }, title="run")

        util = obs.metrics.series_for("pilot_core_utilization",
                                      {"pilot": pilot.uid})
        pending = obs.metrics.series_for("scheduler_pending_total",
                                         {"pilot": pilot.uid})
        report.add_table(
            ["t (s)", "core utilization", "pending tasks"],
            [[f"{t:.0f}", f"{u:.2f}", f"{p:.0f}"]
             for (t, u), (_, p) in zip(util, pending)],
            title="sampled series")

        grants = obs.metrics.histogram("scheduler_grant_latency_s",
                                       {"pilot": pilot.uid})
        latency = obs.metrics.histogram("task_latency_s")
        report.add_kv({
            "tasks completed": latency.count,
            "grant latency p90": f"<= {grants.quantile(0.9):.3g} s",
            "task latency mean": f"{latency.mean:.1f} s",
            "task latency p90": f"<= {latency.quantile(0.9):.3g} s",
        }, title="latency histograms")

        report.add_table(
            ["kind", "severity", "subject", "message"],
            [[e.kind, e.severity, e.subject, e.message]
             for e in obs.monitors.events],
            title="anomaly log")
        report.print()

        # the end-of-run postmortem: dashboard summary + attribution.
        # the critical path pins sim-straggler's execute phase; every
        # what-if projection is a validated makespan lower bound.
        attribution = session.attribution(makespan=makespan)
        assert attribution.validate() == []
        print()
        print(obs.dashboard.summary(attribution=attribution,
                                    title="End-of-run postmortem"))


if __name__ == "__main__":
    main()
