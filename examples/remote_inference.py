#!/usr/bin/env python3
"""Remote vs local service deployment -- and a genuinely remote TCP service.

Part 1 reproduces the paper's local/remote comparison in simulation:
identical NOOP workloads against Delta-local and R3-remote services show
the latency gap (0.063 ms vs 0.47 ms one way); with llama-8b the gap
disappears behind inference time (§IV-D: "model locality is a secondary
concern").

Part 2 leaves the simulation: a real TCP server (JSON-lines over a socket)
hosts the synthetic llama backend in another thread and a real client calls
it -- the code path a production R3 deployment would use.

Run:  python examples/remote_inference.py
"""

from repro.analytics import ReportBuilder, run_service_workload
from repro.comm import TcpServiceClient, TcpServiceServer
from repro.serving import LlamaModel
from repro.sim import RngHub


def part1_simulated() -> None:
    report = ReportBuilder("Local (Delta) vs remote (R3) services")
    rows = []
    for model, n_req, tag in [("noop", 512, "NOOP"),
                              ("llama-8b", 8, "llama-8b")]:
        for deployment in ("local", "remote"):
            result = run_service_workload(
                4, 4, deployment=deployment, model=model,
                n_requests=n_req, seed=9, max_tokens=64)
            row = result.row()
            rows.append([tag, deployment, row["rt_mean_s"],
                         row["communication_mean_s"],
                         row["inference_mean_s"]])
    report.add_table(["model", "deployment", "RT(mean)", "communication",
                      "inference"], rows)
    report.add_text("NOOP: remote RT ~7x local (latency-bound).  "
                    "llama-8b: local and remote RT are indistinguishable -- "
                    "inference dominates (§IV-D).")
    report.print()


def part2_real_tcp() -> None:
    model = LlamaModel()
    rng = RngHub(123).stream("tcp-llm")

    def handler(request):
        payload, duration = model.infer(
            request.get("prompt", ""), rng,
            {"max_tokens": int(request.get("max_tokens", 32))})
        return {"text": payload.text,
                "completion_tokens": payload.completion_tokens,
                "modeled_duration_s": duration}

    report = ReportBuilder("Genuinely remote: llama backend over real TCP")
    with TcpServiceServer(handler) as server:
        host, port = server.endpoint
        client = TcpServiceClient(host, port)
        report.add_text(f"server listening on {host}:{port} "
                        f"(ping: {client.ping()})")
        reply = client.request({
            "prompt": "hybrid workflows combine", "max_tokens": 24})
        report.add_kv({
            "completion tokens": str(reply["completion_tokens"]),
            "modeled duration": f"{reply['modeled_duration_s']:.2f} s",
            "text": reply["text"][:100] + "...",
        }, title="one real round trip:")
    report.print()


if __name__ == "__main__":
    part1_simulated()
    part2_real_tcp()
