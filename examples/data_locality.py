#!/usr/bin/env python3
"""Data locality walkthrough: caches, dedup and data-aware placement.

An iterative HPO-style workload (rounds of training tasks, every task
reading the same 1.6 TB Globus-staged reference dataset plus its own
50 GB shard) runs three times:

1. **cold**     -- caching and dedup off: the seed's behaviour, every task
                   pays the full WAN transfer;
2. **warm**     -- content-addressed caching on: the dataset crosses the
                   WAN once per platform, repeats are free;
3. **locality** -- plus data-affinity placement: shard data sticks to the
                   platform that already holds it.

Run:  python examples/data_locality.py
"""

from repro import (
    DataConfig,
    PilotDescription,
    PilotManager,
    Session,
    TaskDescription,
    TaskManager,
)
from repro.analytics import ReportBuilder, data_metrics

DATASET_BYTES = 1.6e12   # the Cell Painting pipeline's Globus dataset
SHARD_BYTES = 50e9
ROUNDS = 3
TASKS_PER_ROUND = 8


def run(label: str, config: DataConfig):
    with Session(seed=11, data_config=config) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        tmgr.add_pilots(pmgr.submit_pilots([
            PilotDescription(resource="delta", nodes=2, runtime_s=1e8),
            PilotDescription(resource="frontier", nodes=2, runtime_s=1e8),
        ]))
        for _round in range(ROUNDS):
            tasks = tmgr.submit_tasks([
                TaskDescription(
                    name=f"train-{i}",
                    executable="train", duration_s=30.0,
                    input_staging=[
                        {"source": "hpo/reference-dataset",
                         "size_bytes": DATASET_BYTES},
                        {"source": f"hpo/shard-{i}",
                         "size_bytes": SHARD_BYTES},
                    ])
                for i in range(TASKS_PER_ROUND)])
            session.run(until=tmgr.wait_tasks(tasks))
        metrics = data_metrics(tmgr.data_manager)
        return label, session.now, metrics, tmgr.affinity_placements


def main() -> None:
    arms = [
        run("cold (no cache, no dedup)",
            DataConfig(cache_enabled=False, dedup_inflight=False,
                       placement="round_robin")),
        run("warm cache, round-robin",
            DataConfig(placement="round_robin")),
        run("warm cache + data affinity",
            DataConfig(placement="data_affinity")),
    ]
    report = ReportBuilder("Data locality: cold vs warm vs affinity")
    rows = []
    for label, makespan, m, affinity in arms:
        rows.append([label, f"{makespan:.0f}", f"{m.bytes_moved / 1e12:.2f}",
                     f"{m.bytes_saved / 1e12:.2f}",
                     f"{m.hit_rate * 100:.0f}%" if m.staged_requests else "-",
                     affinity])
    report.add_table(
        ["configuration", "makespan (s)", "moved (TB)", "saved (TB)",
         "hit rate", "affinity placements"], rows)
    cold, warm = arms[0][2], arms[1][2]
    report.add_text(
        f"Warm caching cuts staged bytes {cold.bytes_moved / warm.bytes_moved:.1f}x "
        "on this iterative workload; affinity keeps shard data pinned to the "
        "platform that already holds it.")
    print(report.render())


if __name__ == "__main__":
    main()
