#!/usr/bin/env python3
"""Streaming campaign: three use-case graphs in one dataflow campaign.

The campaign engine runs the UQ and signature-detection graphs (their
per-item dataflow forms) plus the cell-painting graph *concurrently* in
one campaign on a shared allocation, with a backpressure window bounding
in-flight tasks across everything.  No stage barriers: every sample's
enrichment, every model's UQ cells, every HPO round streams the moment
its own inputs land.

Run:  python examples/streaming_campaign.py
"""

from repro import PilotDescription, PilotManager, Session, TaskManager
from repro.analytics import ReportBuilder, campaign_metrics
from repro.workflows import (
    CellPaintingConfig,
    SignatureConfig,
    UQConfig,
    build_cell_painting_campaign,
    build_signature_campaign,
    build_uq_campaign,
)


def main() -> None:
    with Session(seed=9) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        (pilot,) = pmgr.submit_pilots(
            PilotDescription(resource="delta", nodes=4, runtime_s=1e7))
        tmgr.add_pilots(pilot)
        runner = session.campaign_runner(tmgr, window=64)

        graphs = [
            build_uq_campaign(UQConfig(seeds=(0, 1), n_train=120,
                                       n_test=60, seed=5)),
            build_signature_campaign(SignatureConfig(
                n_samples=8, variants_per_sample=150, seed=4)),
            build_cell_painting_campaign(CellPaintingConfig(
                n_shards=4, images_per_shard=4, image_size=16, n_trials=4,
                concurrent_trials=2, min_shards_to_train=2,
                trial_epochs=5)),
        ]
        proc = session.engine.process(runner.run_campaign(graphs))
        uq_ctx, sig_ctx, cp_ctx = session.run(until=proc)
        metrics = campaign_metrics(session, runner.node_tasks,
                                   total_cores=4 * 64)

    report = ReportBuilder("Streaming campaign -- three workflows, "
                           "one allocation")
    report.add_table(
        ["workflow", "nodes", "headline result"],
        [["uncertainty-quantification", len(graphs[0]),
          f"best llama method: "
          f"{uq_ctx['result'].best_method_for('llama')}"],
         ["signature-detection", len(graphs[1]),
          f"recovery recall: {sig_ctx['result'].recovery_recall:.2f}"],
         ["cell-painting", len(graphs[2]),
          f"best val accuracy: "
          f"{cp_ctx['result'].best_val_accuracy:.3f}"]],
        title="campaign graphs")
    report.add_kv({
        "tasks (done/total)": f"{metrics.n_done}/{metrics.n_tasks}",
        "makespan": f"{metrics.makespan_s:.1f} s",
        "cross-node overlap fraction": f"{metrics.overlap_fraction:.2f}",
        "allocation idle fraction": f"{metrics.idle_fraction:.3f}",
        "peak in-flight (window 64)": runner.window.peak,
    }, title="campaign metrics")
    report.print()


if __name__ == "__main__":
    main()
