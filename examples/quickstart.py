#!/usr/bin/env python3
"""Quickstart: pilot + service + tasks in ~60 lines.

Boots a pilot on the (simulated) Delta platform, starts one llama-8b
service on it, runs a few compute tasks alongside, and sends the service
an inference request -- the paper's AI-out-HPC coupling in miniature.

Run:  python examples/quickstart.py
"""

from repro import (
    PilotDescription,
    PilotManager,
    ServiceClient,
    ServiceDescription,
    ServiceManager,
    Session,
    TaskDescription,
    TaskManager,
)


def main() -> None:
    with Session(seed=1) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        smgr = ServiceManager(session, registry_platform="delta")

        # 1. Acquire resources: 4 Delta nodes (256 cores / 16 GPUs).
        (pilot,) = pmgr.submit_pilots(
            PilotDescription(resource="delta", gpus=16, runtime_s=7200))
        tmgr.add_pilots(pilot)

        # 2. Start an ML service (scheduled with priority, one GPU).
        (service,) = smgr.start_services(
            ServiceDescription(model="llama-8b", backend="ollama"), pilot)
        session.run(until=service.ready)
        print(f"service {service.uid} READY at {service.address} "
              f"(t={session.now:.1f}s simulated)")
        bt = session.profiler.duration(service.uid, "bootstrap_start",
                                       "bootstrap_stop")
        print(f"bootstrap time: {bt:.1f}s "
              f"(launch+init+publish, init dominates)\n")

        # 3. Run HPC tasks next to the service.
        tasks = tmgr.submit_tasks([
            TaskDescription(name=f"sim-{i}", executable="/bin/physics-sim",
                            duration_s=30.0, cores_per_rank=8)
            for i in range(8)])
        session.run(until=tmgr.wait_tasks(tasks))
        print(f"{len(tasks)} compute tasks DONE at t={session.now:.1f}s; "
              f"states: {tmgr.counts_by_state()}\n")

        # 4. Couple HPC and ML: ask the served model a question.
        client = ServiceClient(session, platform="delta")

        def ask():
            result = yield from client.infer(
                service.address,
                "what dominates the response time of hybrid workflows?",
                params={"max_tokens": 48})
            return result

        result = session.run(until=session.engine.process(ask()))
        print(f"inference ok={result.ok} "
              f"RT={result.response_time:.2f}s "
              f"(communication={result.communication * 1e3:.2f}ms, "
              f"inference={result.inference_time:.2f}s)")
        print(f"reply: {result.text[:120]}...")

        # 5. Orderly shutdown.
        smgr.stop_services(service)
        session.run(until=service.stopped)
        print(f"\nservice stopped cleanly; session ended at "
              f"t={session.now:.1f}s simulated "
              f"({len(session.profiler)} profile events recorded)")


if __name__ == "__main__":
    main()
