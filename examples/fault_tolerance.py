#!/usr/bin/env python3
"""Fault tolerance walkthrough: injection, detection, policy recovery.

An iterative campaign (rounds of dependent task waves) runs four times:

1. **crash-free**  -- no faults: the goodput baseline;
2. **no recovery** -- MTBF-injected node crashes kill tasks and the
                      campaign dies at its first broken round (the
                      pre-resilience behaviour);
3. **retry**       -- the same fault schedule, but failed tasks re-bind
                      to surviving capacity after jittered backoff, and a
                      preempted pilot is resubmitted through the batch
                      queue once its heartbeat lease expires;
4. **checkpoint**  -- a pilot walltime kill ends the campaign mid-flight;
                      a restarted campaign resumes from the last durable
                      per-round checkpoint instead of replaying from
                      round zero.

Failures are *observed*, never known: recovery waits for heartbeat-lease
expiry, and the printed detection latencies are monitor declarations
joined against the injector's ground-truth fault times.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    FaultModel,
    PilotDescription,
    PilotManager,
    PilotResubmitPolicy,
    ResilienceConfig,
    RetryPolicy,
    Session,
    TaskDescription,
    TaskManager,
)
from repro.analytics import ReportBuilder, failure_metrics
from repro.pilot.states import TaskState

ROUNDS = 6
TASKS_PER_ROUND = 16
TASK_DURATION_S = 60.0
TASK_CORES = 8
WORKLOAD_CORE_S = ROUNDS * TASKS_PER_ROUND * TASK_DURATION_S * TASK_CORES


def run_campaign(label, config, walltime_s=1e9, store_key=None, seed=29):
    """Drive one campaign; returns (row, detection latencies)."""
    with Session(seed=seed, resilience_config=config) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        (pilot,) = pmgr.submit_pilots(PilotDescription(
            resource="delta", nodes=2, runtime_s=walltime_s))
        tmgr.add_pilots(pilot)
        checkpoints = session.resilience.checkpoints
        first_round = 0
        if store_key and checkpoints.has(store_key):
            first_round = checkpoints.latest(store_key)[0] + 1
            print(f"  [{label}] resuming from round {first_round} "
                  "(durable checkpoint)")
        rounds_done = first_round
        for rnd in range(first_round, ROUNDS):
            tasks = tmgr.submit_tasks([
                TaskDescription(name=f"r{rnd}-t{i}", executable="sim",
                                duration_s=TASK_DURATION_S,
                                cores_per_rank=TASK_CORES)
                for i in range(TASKS_PER_ROUND)])
            session.run(until=tmgr.wait_tasks(tasks))
            if any(t.state != TaskState.DONE for t in tasks):
                print(f"  [{label}] round {rnd} broke at "
                      f"t={session.now:.0f}s -- campaign over")
                break
            rounds_done += 1
            if store_key:
                proc = session.engine.process(
                    checkpoints.save(store_key, rnd, None, nbytes=1e9))
                session.run(until=proc)
        metrics = failure_metrics(session, tmgr.tasks)
        row = [label, f"{rounds_done}/{ROUNDS}", f"{session.now:.0f}",
               f"{metrics.goodput_core_s / WORKLOAD_CORE_S * 100:.0f}%",
               metrics.failures_total, metrics.retries_granted,
               dict(metrics.failure_reasons) or "-"]
        return row, session.resilience.detection_latencies(), metrics


def main() -> None:
    report = ReportBuilder("Fault tolerance: crash-free vs MTBF-injected "
                           f"runs ({ROUNDS}x{TASKS_PER_ROUND} tasks)")
    rows, detections = [], []

    # 1. crash-free baseline
    row, _, _ = run_campaign("crash-free", ResilienceConfig(retry=None))
    rows.append(row)

    # 2. node faults, no recovery: the campaign collapses
    faults = FaultModel(node_mtbf_s=200.0, node_mttr_s=120.0)
    row, _, _ = run_campaign("faults, none", ResilienceConfig(
        retry=None, faults=faults))
    rows.append(row)

    # 3. same faults + preemption, full recovery: retry + resubmission
    config = ResilienceConfig(
        heartbeat_interval_s=5.0,
        retry=RetryPolicy(max_retries=3, backoff_base_s=2.0),
        pilot_resubmit=PilotResubmitPolicy(max_resubmits=2),
        faults=FaultModel(node_mtbf_s=200.0, node_mttr_s=120.0,
                          pilot_preempt_mtbf_s=2500.0))
    row, lat, _ = run_campaign("faults, retry", config)
    rows.append(row)
    detections.extend(lat)

    # 4. walltime kill + checkpoint/restart across two sessions
    store = {}

    def checkpoint_config():
        return ResilienceConfig(
            heartbeat_interval_s=5.0,
            retry=RetryPolicy(max_retries=2, backoff_base_s=2.0,
                              rebind_wait_s=30.0),
            checkpoint_store=store)

    row, lat, _ = run_campaign("kill at 200s", checkpoint_config(),
                               walltime_s=200.0, store_key="demo")
    rows.append(row)
    detections.extend(lat)
    row, lat, _ = run_campaign("restarted", checkpoint_config(),
                               store_key="demo", seed=31)
    rows.append(row)
    detections.extend(lat)

    report.add_table(
        ["campaign", "rounds", "makespan(s)", "committed", "failures",
         "retries", "failure reasons"], rows)
    if detections:
        report.add_text(
            "Detection latencies (heartbeat leases, 5s beats, 3 misses): "
            + ", ".join(f"{d:.1f}s" for d in detections)
            + " -- recovery acted on observed silence, not oracle events.")
    print()
    print(report.render())


if __name__ == "__main__":
    main()
