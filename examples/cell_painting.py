#!/usr/bin/env python3
"""Cell Painting pipeline (use case II-A): dose classification with HPO.

Synthesises dose-labelled cell-painting imagery, runs the two-stage
pipeline -- CPU data-prep shards overlapping with GPU HPO training trials
-- and reports the hyperparameter search.  Everything actually computes
(image synthesis, augmentation, feature extraction, MLP training).

Run:  python examples/cell_painting.py
"""

from repro import PilotDescription, PilotManager, Session, TaskManager
from repro.analytics import ReportBuilder
from repro.workflows import (
    CellPaintingConfig,
    WorkflowRunner,
    build_cell_painting_pipeline,
)


def main() -> None:
    config = CellPaintingConfig(
        n_shards=10, images_per_shard=10, image_size=28,
        augmentations_per_image=2, min_shards_to_train=4,
        n_trials=12, concurrent_trials=4, sampler="tpe", seed=3,
        trial_epochs=15)

    with Session(seed=3) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        (pilot,) = pmgr.submit_pilots(
            PilotDescription(resource="delta", nodes=2, runtime_s=1e7))
        tmgr.add_pilots(pilot)
        runner = WorkflowRunner(session, tmgr)

        pipeline = build_cell_painting_pipeline(config)
        proc = session.engine.process(runner.run_pipeline(pipeline))
        context = session.run(until=proc)

    result = context["result"]
    study = context["study"]

    report = ReportBuilder("Cell Painting -- dose-level classification "
                           "with hyperparameter optimisation")
    rows = []
    for trial in study.trials:
        if not trial.is_complete:
            continue
        rows.append([
            trial.number,
            f"{trial.params['learning_rate']:.2e}",
            trial.params["batch_size"],
            f"{trial.params['weight_decay']:.1e}",
            f"{trial.params['dropout']:.2f}",
            f"{1.0 - trial.value:.3f}",
        ])
    report.add_table(
        ["trial", "learning_rate", "batch", "weight_decay", "dropout",
         "val_accuracy"], rows, title="HPO trials (TPE sampler)")
    report.add_kv({
        "best validation accuracy": f"{result.best_val_accuracy:.3f}",
        "shards ready when training started":
            f"{result.n_shards_used_first_round}/{result.n_shards_total}",
        "data/training overlap observed": str(result.overlap_observed),
        "completed trials": str(result.n_trials),
    }, title="Summary:")
    report.print()


if __name__ == "__main__":
    main()
