#!/usr/bin/env python3
"""Uncertainty Quantification pipeline (use case II-C).

Three-level hierarchy run with maximal task concurrency: base models
(llama, mistral) x random seeds x UQ methods (Bayesian-LoRA-like,
LoRA-ensemble-like), each cell really fitting and evaluating its method;
post-processing aggregates the comparison.

Run:  python examples/uq_pipeline.py
"""

from repro import PilotDescription, PilotManager, Session, TaskManager
from repro.analytics import ReportBuilder
from repro.workflows import UQConfig, WorkflowRunner, build_uq_pipeline


def main() -> None:
    config = UQConfig(models=("llama", "mistral"),
                      seeds=(0, 1, 2, 3), n_train=240, n_test=120, seed=5)

    with Session(seed=5) as session:
        pmgr = PilotManager(session)
        tmgr = TaskManager(session)
        (pilot,) = pmgr.submit_pilots(
            PilotDescription(resource="delta", nodes=4, runtime_s=1e7))
        tmgr.add_pilots(pilot)
        runner = WorkflowRunner(session, tmgr)

        proc = session.engine.process(
            runner.run_pipeline(build_uq_pipeline(config)))
        context = session.run(until=proc)

    result = context["result"]
    report = ReportBuilder("Uncertainty Quantification -- method/model "
                           "comparison")
    rows = [[row.model, row.method, row.n_seeds,
             f"{row.accuracy_mean:.3f}±{row.accuracy_std:.3f}",
             f"{row.nll_mean:.3f}", f"{row.ece_mean:.3f}",
             f"{row.brier_mean:.3f}"]
            for row in result.summary]
    report.add_table(
        ["model", "UQ method", "seeds", "accuracy", "NLL", "ECE", "Brier"],
        rows, title=f"Aggregated over {len(config.seeds)} seeds "
                    f"({config.n_cells} grid cells, all run as "
                    "concurrent tasks)")
    report.add_kv({
        "best-calibrated method (llama)":
            result.best_method_for("llama", "ece_mean"),
        "best-calibrated method (mistral)":
            result.best_method_for("mistral", "ece_mean"),
    }, title="Conclusions:")
    report.print()


if __name__ == "__main__":
    main()
