#!/usr/bin/env python3
"""Mini scaling study: all three experiments of §IV at reduced scale.

Prints the Fig. 3 / Fig. 4-5 / Fig. 6 series at example-friendly sizes.
The full-parameter versions live in benchmarks/ (one per figure).

Run:  python examples/scaling_study.py
"""

from repro.analytics import (
    ReportBuilder,
    run_experiment1,
    run_experiment2,
    run_experiment3,
)


def main() -> None:
    report = ReportBuilder("Mini scaling study (reduced-scale §IV)")

    rows = []
    for n in (1, 4, 16, 64):
        row = run_experiment1(n, seed=2).row()
        rows.append([n, row["launch_mean_s"], row["init_mean_s"],
                     row["publish_mean_s"], row["bt_mean_s"]])
    report.add_table(["#services", "launch", "init", "publish", "BT"],
                     rows, title="Experiment 1 -- bootstrap (Frontier)")

    rows = []
    for clients, services in ((4, 1), (4, 4)):
        for deployment in ("local", "remote"):
            r = run_experiment2(clients, services, deployment,
                                n_requests=256, seed=2).row()
            rows.append([f"{clients}/{services}", deployment,
                         r["rt_mean_s"], r["communication_mean_s"],
                         r["service_mean_s"]])
    report.add_table(["clients/services", "deployment", "RT", "comm",
                      "service"], rows,
                     title="Experiment 2 -- NOOP response time")

    rows = []
    for clients, services in ((8, 1), (8, 8)):
        r = run_experiment3(clients, services, "remote", n_requests=8,
                            seed=2).row()
        rows.append([f"{clients}/{services}", r["rt_mean_s"],
                     r["service_mean_s"], r["inference_mean_s"]])
    report.add_table(["clients/services", "RT", "service(queue)",
                      "inference"], rows,
                     title="Experiment 3 -- llama-8b inference (remote)")
    report.add_text("Shapes: init dominates BT; communication dominates "
                    "NOOP RT; inference dominates LLM RT, with queueing "
                    "when services are scarce.")
    report.print()


if __name__ == "__main__":
    main()
